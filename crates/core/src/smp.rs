//! Shared-memory parallel multifrontal factorization.
//!
//! The parallelization mirrors the paper's two regimes:
//!
//! 1. **Tree parallelism** at the bottom: disjoint subtrees are independent,
//!    so small fronts are processed by a work-stealing pool over the
//!    assembly tree (one task per supernode, released when its children
//!    finish).
//! 2. **Kernel parallelism** at the top: near the root the tree is too
//!    narrow to feed the cores, but the fronts are large — those are
//!    processed in postorder with the trailing (Schur) update of each panel
//!    split across all threads.
//!
//! The boundary between regimes is the `big_front` threshold, closed upward
//! (a parent of a big front is big) so phase 2 never waits on phase 1.
//!
//! Workers write factor panels straight into the [`Factor`] slab (disjoint
//! per supernode) and draw fronts/update buffers from their
//! [`FrontWorkspace`] arenas, so the steady state allocates nothing per
//! supernode; idle workers wait with a spin-then-park [`Backoff`] instead
//! of burning a core on `yield_now`.

use crate::backoff::Backoff;
use crate::error::FactorError;
use crate::factor::{Factor, FactorKind};
use crate::frontal::{assemble_front, extract_update_into, UpdateMatrix};
use crate::workspace::{FrontWorkspace, Workspace};
use crossbeam_deque::{Injector, Steal};
use parfact_dense::blas::{gemm_nt, syrk_ln, trsm_right_lt};
use parfact_dense::chol;
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::perm::Perm;
use parfact_symbolic::{Symbolic, NONE};
use parfact_trace::{Collector, LocalRecorder, Phase};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Options for the SMP engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmpOpts {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Fronts at least this large switch to kernel parallelism.
    pub big_front: usize,
}

impl Default for SmpOpts {
    fn default() -> Self {
        SmpOpts {
            threads: 0,
            big_front: 384,
        }
    }
}

/// Resolve `threads = 0` to the machine's available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    }
}

/// Shared-memory parallel factorization of an already-permuted matrix.
pub fn factorize_smp(
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    kind: FactorKind,
    perm: Perm,
    opts: &SmpOpts,
) -> Result<Factor, FactorError> {
    factorize_smp_traced(ap, sym, kind, perm, opts, &Collector::disabled())
}

/// [`factorize_smp`] with instrumentation recorded into `tr`. Each phase-1
/// worker accumulates into a private recorder (keyed by worker id) that
/// merges into the collector when the worker exits; phase 2 records as
/// worker 0.
pub fn factorize_smp_traced(
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    kind: FactorKind,
    perm: Perm,
    opts: &SmpOpts,
    tr: &Collector,
) -> Result<Factor, FactorError> {
    let mut factor = Factor::allocate(sym, kind, perm);
    let mut ws = Workspace::new();
    factorize_smp_into(ap, sym, opts, tr, &mut ws, &mut factor)?;
    Ok(factor)
}

/// The in-place SMP engine: overwrite `factor`'s slab (allocated with the
/// same `sym`) using the per-worker arenas in `ws`. See
/// [`crate::seq::factorize_seq_into`] for the error-state contract.
pub(crate) fn factorize_smp_into(
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    opts: &SmpOpts,
    tr: &Collector,
    ws: &mut Workspace,
    factor: &mut Factor,
) -> Result<(), FactorError> {
    let nthreads = resolve_threads(opts.threads);
    let nsuper = sym.nsuper();
    if nthreads <= 1 || nsuper <= 1 {
        return crate::seq::factorize_seq_into(ap, sym, tr, ws, factor);
    }
    let kind = factor.kind;

    // Upward-closed "big" set.
    let mut big = vec![false; nsuper];
    for s in 0..nsuper {
        if sym.front_order(s) >= opts.big_front || sym.tree.children[s].iter().any(|&c| big[c]) {
            big[s] = true;
        }
    }

    let updates: Vec<Mutex<Option<UpdateMatrix>>> = (0..nsuper).map(|_| Mutex::new(None)).collect();
    let pending: Vec<AtomicUsize> = (0..nsuper)
        .map(|s| AtomicUsize::new(sym.tree.children[s].len()))
        .collect();
    let small_total = big.iter().filter(|&&b| !b).count();
    let completed = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<FactorError>> = Mutex::new(None);
    let writer = FactorWriter::new(factor);

    // ---- Phase 1: tree-parallel over small supernodes. ----
    let injector = Injector::new();
    for s in 0..nsuper {
        if !big[s] && sym.tree.children[s].is_empty() {
            injector.push(s);
        }
    }
    ws.ensure_threads(nthreads);
    {
        let arenas = &mut ws.threads[..nthreads];
        std::thread::scope(|scope| {
            for (wid, wst) in arenas.iter_mut().enumerate() {
                let (updates, pending, big, writer) = (&updates, &pending, &big, &writer);
                let (injector, completed, failed, error) = (&injector, &completed, &failed, &error);
                scope.spawn(move || {
                    wst.scatter.ensure(sym.n);
                    let mut rec = tr.local(wid);
                    let mut backoff = Backoff::new();
                    loop {
                        if failed.load(Ordering::Relaxed)
                            || completed.load(Ordering::Relaxed) >= small_total
                        {
                            break;
                        }
                        let s = match injector.steal() {
                            Steal::Success(s) => s,
                            Steal::Retry => continue,
                            Steal::Empty => {
                                backoff.snooze();
                                continue;
                            }
                        };
                        backoff.reset();
                        let result =
                            process_supernode(ap, sym, kind, s, wst, writer, updates, &mut rec);
                        if let Err(e) = result {
                            *error.lock() = Some(e);
                            failed.store(true, Ordering::SeqCst);
                            break;
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                        let p = sym.tree.parent[s];
                        if p != NONE && !big[p] && pending[p].fetch_sub(1, Ordering::SeqCst) == 1 {
                            injector.push(p);
                        }
                    }
                });
            }
        });
    }
    if let Some(e) = error.into_inner() {
        return Err(e);
    }

    // ---- Phase 2: kernel-parallel over big supernodes, in postorder. ----
    let wst = &mut ws.threads[0];
    wst.scatter.ensure(sym.n);
    let mut rec = tr.local(0);
    for s in 0..nsuper {
        if !big[s] {
            continue;
        }
        wst.children.clear();
        for &c in &sym.tree.children[s] {
            wst.children
                .push(updates[c].lock().take().expect("child update missing"));
        }
        let tick = rec.start();
        let fo = sym.front_order(s);
        wst.note_front(fo * fo);
        let (f, entries) =
            assemble_front(ap, sym, s, &mut wst.scatter, &wst.children, &mut wst.front);
        rec.stop(tick, Phase::ExtendAdd, Some(s));
        rec.add_assembled_entries(entries);
        rec.mem_alloc(f * f * 8);
        for u in &wst.children {
            rec.mem_free(u.data.len() * 8);
        }
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        let w = c1 - c0;
        match kind {
            FactorKind::Llt => parallel_partial_potrf_traced(
                f,
                w,
                &mut wst.front,
                nthreads,
                &mut wst.scratch,
                &mut rec,
                Some(s),
            )
            .map_err(|e| FactorError::from_dense(e, c0))?,
            FactorKind::Ldlt => {
                // LDLt fronts keep the sequential kernel (they only arise in
                // quasi-definite runs where the SPD fast path is off anyway).
                let tick = rec.start();
                // SAFETY: phase 2 is single-threaded; segment owned by `s`.
                let dseg = unsafe { writer.d_mut(c0, w) };
                chol::partial_ldlt(f, w, &mut wst.front, f, dseg)
                    .map_err(|e| FactorError::from_dense(e, c0))?;
                rec.stop(tick, Phase::Panel, Some(s));
            }
        }
        rec.add_flops(crate::dist::front::flops_partial(f, w));
        rec.front_done();
        // SAFETY: phase 2 is single-threaded and each panel written once.
        unsafe { writer.panel_mut(s) }.copy_from_slice(&wst.front[..f * w]);
        rec.mem_alloc(f * w * 8);
        if f > w {
            let r = f - w;
            let mut data = wst.take_buf(r * r);
            extract_update_into(sym, s, &wst.front, f, &mut data);
            rec.mem_alloc(data.len() * 8);
            *updates[s].lock() = Some(UpdateMatrix { src: s, data });
        }
        rec.mem_free(f * f * 8);
        while let Some(u) = wst.children.pop() {
            wst.recycle(u.data);
        }
    }
    Ok(())
}

/// Raw-pointer view of a [`Factor`]'s output arrays for disjoint
/// cross-thread writes. Each supernode's panel (and `d` segment) is written
/// by exactly one worker; the thread-scope join publishes the writes.
struct FactorWriter<'a> {
    panels: *mut f64,
    panel_ptr: &'a [usize],
    d: *mut f64,
    d_len: usize,
}

// SAFETY: FactorWriter holds raw pointers into one Factor's slabs; the
// scheduler hands each supernode's panel / `d` segment to exactly one
// worker (disjoint ranges), and the thread-scope join publishes the
// writes before the Factor is read again.
unsafe impl Send for FactorWriter<'_> {}
// SAFETY: see Send above — shared access is only through `panel_mut` /
// `d_mut`, whose contracts require a unique writer per disjoint range.
unsafe impl Sync for FactorWriter<'_> {}

impl<'a> FactorWriter<'a> {
    fn new(factor: &'a mut Factor) -> Self {
        FactorWriter {
            panels: factor.panels.as_mut_ptr(),
            panel_ptr: &factor.panel_ptr,
            d: factor.d.as_mut_ptr(),
            d_len: factor.d.len(),
        }
    }

    /// # Safety
    /// The caller must be the unique writer of panel `s` while the
    /// returned slice lives.
    #[allow(clippy::mut_from_ref)]
    unsafe fn panel_mut(&self, s: usize) -> &mut [f64] {
        let (p0, p1) = (self.panel_ptr[s], self.panel_ptr[s + 1]);
        // SAFETY: `panel_ptr` bounds come from the Factor this writer was
        // built over, so the range is in-bounds; uniqueness of the `&mut`
        // is the caller's contract (see `# Safety`).
        unsafe { std::slice::from_raw_parts_mut(self.panels.add(p0), p1 - p0) }
    }

    /// # Safety
    /// The caller must be the unique writer of `d[c0..c0+w]` while the
    /// returned slice lives.
    #[allow(clippy::mut_from_ref)]
    unsafe fn d_mut(&self, c0: usize, w: usize) -> &mut [f64] {
        debug_assert!(c0 + w <= self.d_len);
        // SAFETY: `c0 + w <= d_len` keeps the slice in-bounds (supernode
        // column ranges never overlap); uniqueness of the `&mut` is the
        // caller's contract (see `# Safety`).
        unsafe { std::slice::from_raw_parts_mut(self.d.add(c0), w) }
    }
}

#[allow(clippy::too_many_arguments)]
fn process_supernode(
    ap: &CscMatrix,
    sym: &Symbolic,
    kind: FactorKind,
    s: usize,
    wst: &mut FrontWorkspace,
    writer: &FactorWriter<'_>,
    updates: &[Mutex<Option<UpdateMatrix>>],
    rec: &mut LocalRecorder<'_>,
) -> Result<(), FactorError> {
    wst.children.clear();
    for &c in &sym.tree.children[s] {
        wst.children
            .push(updates[c].lock().take().expect("child update missing"));
    }
    let tick = rec.start();
    let fo = sym.front_order(s);
    wst.note_front(fo * fo);
    let (f, entries) = assemble_front(ap, sym, s, &mut wst.scatter, &wst.children, &mut wst.front);
    rec.stop(tick, Phase::ExtendAdd, Some(s));
    rec.add_assembled_entries(entries);
    rec.mem_alloc(f * f * 8);
    for u in &wst.children {
        rec.mem_free(u.data.len() * 8);
    }
    let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
    let w = c1 - c0;
    let tick = rec.start();
    match kind {
        FactorKind::Llt => chol::partial_potrf(f, w, &mut wst.front, f)
            .map_err(|e| FactorError::from_dense(e, c0))?,
        FactorKind::Ldlt => {
            // SAFETY: supernode `s` is processed by exactly one worker.
            let dseg = unsafe { writer.d_mut(c0, w) };
            chol::partial_ldlt(f, w, &mut wst.front, f, dseg)
                .map_err(|e| FactorError::from_dense(e, c0))?;
        }
    }
    rec.stop(tick, Phase::Panel, Some(s));
    rec.add_flops(crate::dist::front::flops_partial(f, w));
    rec.front_done();
    // SAFETY: supernode `s` is processed by exactly one worker; panels are
    // disjoint slab ranges.
    unsafe { writer.panel_mut(s) }.copy_from_slice(&wst.front[..f * w]);
    rec.mem_alloc(f * w * 8);
    if f > w {
        let r = f - w;
        let mut data = wst.take_buf(r * r);
        extract_update_into(sym, s, &wst.front, f, &mut data);
        rec.mem_alloc(data.len() * 8);
        *updates[s].lock() = Some(UpdateMatrix { src: s, data });
    }
    rec.mem_free(f * f * 8);
    while let Some(u) = wst.children.pop() {
        wst.recycle(u.data);
    }
    Ok(())
}

/// Partial blocked Cholesky with the trailing update of each panel split
/// across `nthreads` threads. Arithmetic is identical to the sequential
/// kernel (same panels, same per-entry accumulation order — see the
/// determinism contract in `parfact_dense::pack`), so results match
/// [`chol::partial_potrf`] bitwise.
pub fn parallel_partial_potrf(
    nf: usize,
    npiv: usize,
    f: &mut [f64],
    nthreads: usize,
) -> Result<(), parfact_dense::DenseError> {
    let tr = Collector::disabled();
    let mut rec = tr.local(0);
    let mut scratch = Vec::new();
    parallel_partial_potrf_traced(nf, npiv, f, nthreads, &mut scratch, &mut rec, None)
}

/// [`parallel_partial_potrf`] with phase timing: the panel section
/// (diagonal factor + TRSM) accumulates as [`Phase::Panel`], the threaded
/// trailing update as [`Phase::Gemm`]. `scratch` stages the panel copy the
/// workers read (reused across panels and fronts by the caller's arena).
#[allow(clippy::too_many_arguments)]
pub fn parallel_partial_potrf_traced(
    nf: usize,
    npiv: usize,
    f: &mut [f64],
    nthreads: usize,
    scratch: &mut Vec<f64>,
    rec: &mut LocalRecorder<'_>,
    supernode: Option<usize>,
) -> Result<(), parfact_dense::DenseError> {
    let nb = chol::NB;
    let ldf = nf;
    let mut j = 0usize;
    while j < npiv {
        let jb = nb.min(npiv - j);
        let rest = nf - j - jb;
        let tick = rec.start();
        // Panel: factor diagonal block + scale the rows below it.
        {
            let djj = j * ldf + j;
            let (_, tail) = f.split_at_mut(djj);
            // Unblocked factor of the jb x jb diagonal block.
            chol::partial_potrf(jb, jb, &mut tail[..(jb - 1) * ldf + jb], ldf).map_err(
                |e| match e {
                    parfact_dense::DenseError::NotPositiveDefinite { index, value } => {
                        parfact_dense::DenseError::NotPositiveDefinite {
                            index: index + j,
                            value,
                        }
                    }
                    other => other,
                },
            )?;
        }
        if rest > 0 {
            let mut l11_buf = [0.0f64; chol::NB * chol::NB];
            let l11 = &mut l11_buf[..jb * jb];
            for t in 0..jb {
                for i in t..jb {
                    l11[t * jb + i] = f[(j + t) * ldf + j + i];
                }
            }
            {
                let a21 = j * ldf + j + jb;
                let (_, tail) = f.split_at_mut(a21);
                trsm_right_lt(rest, jb, l11, jb, tail, ldf);
            }
            rec.stop(tick, Phase::Panel, supernode);
            let tick = rec.start();
            // Trailing update split by column chunks, each processed with
            // the packed kernels. Per the determinism contract every entry
            // accumulates as one ascending-k chain regardless of chunking,
            // so this matches the sequential whole-trailing syrk bitwise.
            let panel_start = j * ldf + j + jb;
            let trail_col0 = j + jb;
            // Copy the panel (L21, rest x jb, ld = rest) so worker threads
            // can read it while the trailing area is mutated.
            scratch.clear();
            scratch.resize(jb * rest, 0.0);
            for t in 0..jb {
                scratch[t * rest..(t + 1) * rest]
                    .copy_from_slice(&f[panel_start + t * ldf..panel_start + t * ldf + rest]);
            }
            let panel: &[f64] = scratch;
            // Partition trailing columns into chunks of decreasing width so
            // the triangular work is balanced.
            let nchunks = (nthreads * 4).min(rest.max(1));
            let counter = AtomicUsize::new(0);
            let fptr = SendPtr(f.as_mut_ptr());
            std::thread::scope(|scope| {
                for _ in 0..nthreads.min(nchunks) {
                    scope.spawn(|| {
                        let fptr = &fptr;
                        loop {
                            let c = counter.fetch_add(1, Ordering::Relaxed);
                            if c >= nchunks {
                                break;
                            }
                            // Chunk c owns trailing columns [a, b).
                            let a = c * rest / nchunks;
                            let b = (c + 1) * rest / nchunks;
                            if b <= a {
                                continue;
                            }
                            let cw = b - a;
                            // Diagonal part: rows [a, b) of the chunk's
                            // columns — a cw x cw syrk on the lower triangle.
                            // SAFETY: each trailing column is written by
                            // exactly one chunk, and the two views below are
                            // used strictly one after the other.
                            let tri_base = (trail_col0 + a) * ldf + trail_col0 + a;
                            let tri: &mut [f64] = unsafe {
                                std::slice::from_raw_parts_mut(
                                    fptr.0.add(tri_base),
                                    (cw - 1) * ldf + cw,
                                )
                            };
                            syrk_ln(cw, jb, -1.0, &panel[a..], rest, 1.0, tri, ldf);
                            // Below-diagonal part: rows [b, rest) — a gemm.
                            if b < rest {
                                let rect_base = (trail_col0 + a) * ldf + trail_col0 + b;
                                // SAFETY: same disjointness argument as the
                                // `tri` view above — columns [a, b) belong to
                                // this chunk alone, and `tri` is dead by now.
                                let rect: &mut [f64] = unsafe {
                                    std::slice::from_raw_parts_mut(
                                        fptr.0.add(rect_base),
                                        (cw - 1) * ldf + (rest - b),
                                    )
                                };
                                gemm_nt(
                                    rest - b,
                                    cw,
                                    jb,
                                    -1.0,
                                    &panel[b..],
                                    rest,
                                    &panel[a..],
                                    rest,
                                    1.0,
                                    rect,
                                    ldf,
                                );
                            }
                        }
                    });
                }
            });
            rec.stop(tick, Phase::Gemm, supernode);
        } else {
            rec.stop(tick, Phase::Panel, supernode);
        }
        j += jb;
    }
    Ok(())
}

struct SendPtr(*mut f64);
// SAFETY: SendPtr only ferries the trailing-matrix base pointer into the
// worker closures above; each worker carves disjoint column chunks out of
// it (see the SAFETY notes at the `tri`/`rect` views), so sharing the
// address across threads is sound.
unsafe impl Send for SendPtr {}
// SAFETY: see Send above.
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::reconstruction_error;
    use crate::seq::factorize_seq;
    use parfact_sparse::gen;
    use parfact_symbolic::{analyze, AmalgOpts};

    fn both_engines(
        a: &CscMatrix,
        kind: FactorKind,
        opts: &SmpOpts,
    ) -> (Factor, Factor, CscMatrix) {
        let (sym, ap) = analyze(a, &AmalgOpts::default());
        let perm = sym.post.clone();
        let sym = Arc::new(sym);
        let fs = factorize_seq(&ap, &sym, kind, perm.clone()).unwrap();
        let fp = factorize_smp(&ap, &sym, kind, perm, opts).unwrap();
        (fs, fp, ap)
    }

    #[test]
    fn parallel_partial_potrf_matches_sequential_kernel() {
        use parfact_dense::DMat;
        for (n, npiv) in [(60usize, 25usize), (130, 130), (97, 40)] {
            let mut state = n as u64 * 31 + 7;
            let a = DMat::random_spd(n, move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2000) as f64 / 1000.0 - 1.0
            });
            let mut f1 = a.clone();
            chol::partial_potrf(n, npiv, f1.as_mut_slice(), n).unwrap();
            let mut f2 = a.clone();
            parallel_partial_potrf(n, npiv, f2.as_mut_slice(), 4).unwrap();
            // Same panel boundaries and accumulation order: bitwise equal
            // on the lower triangle.
            for j in 0..n {
                for i in j..n {
                    assert_eq!(
                        f1[(i, j)].to_bits(),
                        f2[(i, j)].to_bits(),
                        "mismatch at ({i},{j}) n={n} npiv={npiv}"
                    );
                }
            }
        }
    }

    #[test]
    fn smp_matches_seq_on_2d_grid() {
        let a = gen::laplace2d(20, 20, gen::Stencil2d::FivePoint);
        let opts = SmpOpts {
            threads: 4,
            big_front: 64,
        };
        let (fs, fp, ap) = both_engines(&a, FactorKind::Llt, &opts);
        assert_eq!(fp.max_abs_diff(&fs), 0.0, "engines must agree bitwise");
        assert!(reconstruction_error(&fp, &ap) < 1e-10);
    }

    #[test]
    fn smp_matches_seq_on_3d_grid() {
        let a = gen::laplace3d(6, 6, 6, gen::Stencil3d::SevenPoint);
        let opts = SmpOpts {
            threads: 3,
            big_front: 128,
        };
        let (fs, fp, _) = both_engines(&a, FactorKind::Llt, &opts);
        assert_eq!(fp.max_abs_diff(&fs), 0.0);
    }

    #[test]
    fn smp_ldlt_matches_seq() {
        let a = gen::indefinite(60, 4);
        let opts = SmpOpts {
            threads: 3,
            big_front: 24,
        };
        let (fs, fp, ap) = both_engines(&a, FactorKind::Ldlt, &opts);
        assert_eq!(fp.max_abs_diff(&fs), 0.0);
        assert!(reconstruction_error(&fp, &ap) < 1e-9);
        assert!(fp.d.iter().any(|&x| x < 0.0));
    }

    #[test]
    fn smp_error_propagates() {
        let a = gen::indefinite(50, 6);
        let (sym, ap) = analyze(&a, &AmalgOpts::default());
        let perm = sym.post.clone();
        let sym = Arc::new(sym);
        let r = factorize_smp(
            &ap,
            &sym,
            FactorKind::Llt,
            perm,
            &SmpOpts {
                threads: 4,
                big_front: 32,
            },
        );
        assert!(matches!(r, Err(FactorError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn smp_solve_end_to_end() {
        let a = gen::elasticity3d(4, 4, 3);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut b = vec![0.0; n];
        a.sym_spmv(&xstar, &mut b);
        let opts = SmpOpts {
            threads: 4,
            big_front: 96,
        };
        let (_, fp, _) = both_engines(&a, FactorKind::Llt, &opts);
        let x = fp.solve(&b);
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!((xi - xs).abs() < 1e-7);
        }
    }

    #[test]
    fn single_thread_falls_back_to_seq() {
        let a = gen::laplace2d(6, 6, gen::Stencil2d::FivePoint);
        let opts = SmpOpts {
            threads: 1,
            big_front: 64,
        };
        let (fs, fp, _) = both_engines(&a, FactorKind::Llt, &opts);
        assert_eq!(fp.max_abs_diff(&fs), 0.0);
    }

    #[test]
    fn smp_reuses_workspace_across_refactorizations() {
        // Second run through the same workspace must stay in warm buffers.
        let a = gen::laplace2d(15, 15, gen::Stencil2d::FivePoint);
        let (sym, ap) = analyze(&a, &AmalgOpts::default());
        let perm = sym.post.clone();
        let sym = Arc::new(sym);
        let mut factor = Factor::allocate(&sym, FactorKind::Llt, perm);
        let mut ws = Workspace::new();
        let opts = SmpOpts {
            threads: 2,
            big_front: 64,
        };
        let tr = Collector::disabled();
        factorize_smp_into(&ap, &sym, &opts, &tr, &mut ws, &mut factor).unwrap();
        let first = ws.growth_events();
        assert!(first > 0, "cold start must grow buffers");
        factorize_smp_into(&ap, &sym, &opts, &tr, &mut ws, &mut factor).unwrap();
        // Work stealing makes the supernode-to-worker assignment
        // nondeterministic, so a warm run may still grow a pool buffer —
        // but the front/scatter arenas are stable, so growth must at least
        // taper off rather than repeat per supernode.
        let second = ws.growth_events() - first;
        assert!(
            second <= first,
            "warm run grew more than cold ({second} > {first})"
        );
    }
}
