//! Mapping the assembly tree onto ranks: **subtree-to-subcube**
//! (proportional) mapping, plus the flat baseline it is measured against.
//!
//! Proportional mapping assigns the root front the whole machine and splits
//! each node's rank range among its children in proportion to subtree work.
//! Once a range narrows to one rank, the entire subtree below runs locally
//! on that rank with zero communication — the property that makes the
//! multifrontal method scale: communication only happens in the thin top of
//! the tree, over geometrically shrinking rank groups.

use parfact_symbolic::{Symbolic, NONE};

/// How a supernode's front is laid out over its rank range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Single rank: plain sequential front.
    Local,
    /// Block-cyclic over a `pr x pc` process grid with square blocks of
    /// `nb` rows/columns. `pr == 1` gives the 1-D column layout, `pc == 1`
    /// the 1-D row layout.
    Grid { pr: usize, pc: usize, nb: usize },
}

impl Layout {
    /// Ranks used by this layout.
    pub fn nranks(&self) -> usize {
        match self {
            Layout::Local => 1,
            Layout::Grid { pr, pc, .. } => pr * pc,
        }
    }
}

/// A complete mapping of the assembly tree.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Rank range `[lo, hi)` per supernode.
    pub group: Vec<(usize, usize)>,
    /// Front layout per supernode.
    pub layout: Vec<Layout>,
    /// Total ranks.
    pub nranks: usize,
}

/// Mapping strategy selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapStrategy {
    /// Subtree-to-subcube proportional mapping. `use_2d` picks 2-D grids
    /// for distributed fronts (the paper's scalable choice); otherwise 1-D
    /// column layouts are used everywhere.
    Proportional { use_2d: bool, nb: usize },
    /// Flat mapping: every supernode is distributed over all ranks (no
    /// subtree locality) — the classic baseline that drowns in latency.
    Flat { use_2d: bool, nb: usize },
}

impl Default for MapStrategy {
    fn default() -> Self {
        MapStrategy::Proportional {
            use_2d: true,
            nb: parfact_dense::chol::NB,
        }
    }
}

/// Pick the most square factor pair `(pr, pc)` with `pr * pc == np` and
/// `pr <= pc`.
pub fn grid_shape(np: usize) -> (usize, usize) {
    let mut best = (1, np);
    let mut d = 1;
    while d * d <= np {
        if np.is_multiple_of(d) {
            best = (d, np / d);
        }
        d += 1;
    }
    best
}

fn layout_for(np: usize, use_2d: bool, nb: usize) -> Layout {
    if np == 1 {
        Layout::Local
    } else if use_2d {
        let (pr, pc) = grid_shape(np);
        Layout::Grid { pr, pc, nb }
    } else {
        Layout::Grid { pr: 1, pc: np, nb }
    }
}

/// Split rank range `[lo, hi)` among `nodes` proportionally to their
/// subtree weights. Nodes are laid out in **descending weight** order with
/// rounded (not floored) boundaries, so near-equal heavy children land on
/// disjoint near-equal ranges and featherweight children share the tail
/// rank instead of stealing a boundary.
fn split_range(
    lo: usize,
    hi: usize,
    nodes: &[usize],
    weights: &[f64],
    group: &mut [(usize, usize)],
) {
    let np = hi - lo;
    let total: f64 = nodes.iter().map(|&c| weights[c]).sum();
    let mut order: Vec<usize> = nodes.to_vec();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap().then(a.cmp(&b)));
    let mut pos = 0.0f64;
    for &c in &order {
        let share = weights[c] / total * np as f64;
        let start = (pos.round() as usize).min(np - 1);
        let end = ((pos + share).round() as usize).clamp(start + 1, np);
        group[c] = (lo + start, lo + end);
        pos += share;
    }
}

/// Build a mapping for `p` ranks.
pub fn map_tree(sym: &Symbolic, p: usize, strategy: MapStrategy) -> Mapping {
    assert!(p >= 1);
    let nsuper = sym.nsuper();
    match strategy {
        MapStrategy::Flat { use_2d, nb } => Mapping {
            group: vec![(0, p); nsuper],
            layout: vec![layout_for(p, use_2d, nb); nsuper],
            nranks: p,
        },
        MapStrategy::Proportional { use_2d, nb } => {
            let weights = sym.tree.subtree_sum(|s| {
                // Subtree flop weight: the same per-front estimate the
                // symbolic phase reports.
                let w = sym.sn_width(s);
                let r = sym.sn_rows[s].len();
                let mut fl = 0.0;
                for k in 0..w {
                    let len = (w - k) + r;
                    fl += (len * len) as f64;
                }
                fl + 1.0 // keep zero-work supernodes mappable
            });
            let mut group = vec![(0usize, 0usize); nsuper];
            let mut layout = vec![Layout::Local; nsuper];
            // Roots share [0, p), then ranges split recursively (reverse
            // postorder: parents are assigned before children).
            split_range(0, p, &sym.tree.roots, &weights, &mut group);
            for s in (0..nsuper).rev() {
                let (lo, hi) = group[s];
                let np = hi - lo;
                layout[s] = layout_for(np, use_2d, nb);
                let kids = &sym.tree.children[s];
                if kids.is_empty() {
                    continue;
                }
                if np == 1 {
                    for &c in kids {
                        group[c] = (lo, hi);
                    }
                    continue;
                }
                split_range(lo, hi, kids, &weights, &mut group);
            }
            Mapping {
                group,
                layout,
                nranks: p,
            }
        }
    }
}

/// One rank's work list for the event-driven scheduler (see
/// `dist::factorize_rank`): the rank's distributed supernodes in postorder,
/// plus its local supernodes tagged with the **grid deadline** they feed —
/// the position in `grid` of the distributed ancestor that consumes their
/// subtree's update. Every supernode of one local subtree shares its root's
/// deadline, so sorting by `(deadline, supernode)` groups subtrees by due
/// date while keeping each subtree internally postordered.
pub struct RankSchedule {
    /// Distributed supernodes of this rank, ascending (postorder).
    pub grid: Vec<usize>,
    /// `(deadline, supernode)` for every local supernode, sorted. The
    /// deadline indexes into `grid`; `usize::MAX` means nothing distributed
    /// ever consumes the subtree (it ends at a root).
    pub local: Vec<(usize, usize)>,
}

impl Mapping {
    /// Leader (first rank) of supernode `s`'s group.
    pub fn leader(&self, s: usize) -> usize {
        self.group[s].0
    }

    /// Build rank `me`'s schedule. Deadlines propagate root-to-leaf inside
    /// local subtrees: a local supernode with a distributed parent is due
    /// when that parent runs, and everything below it is due no later
    /// (postorder stores parents after children, so a descending sweep sees
    /// parents first).
    pub fn rank_schedule(&self, sym: &Symbolic, me: usize) -> RankSchedule {
        let nsuper = sym.nsuper();
        let grid: Vec<usize> = (0..nsuper)
            .filter(|&s| self.participates(s, me) && matches!(self.layout[s], Layout::Grid { .. }))
            .collect();
        let mut grid_pos = vec![usize::MAX; nsuper];
        for (i, &g) in grid.iter().enumerate() {
            grid_pos[g] = i;
        }
        let mut deadline = vec![usize::MAX; nsuper];
        let mut local: Vec<(usize, usize)> = Vec::new();
        for s in (0..nsuper).rev() {
            if !self.participates(s, me) || self.layout[s] != Layout::Local {
                continue;
            }
            let p = sym.tree.parent[s];
            deadline[s] = if p == NONE {
                usize::MAX
            } else {
                match self.layout[p] {
                    // Nesting puts `me` in the parent's group, so the
                    // parent is in `grid`.
                    Layout::Grid { .. } => grid_pos[p],
                    // A local parent of a local child shares its rank.
                    Layout::Local => deadline[p],
                }
            };
            local.push((deadline[s], s));
        }
        local.sort_unstable();
        RankSchedule { grid, local }
    }

    /// True when `rank` participates in supernode `s`.
    pub fn participates(&self, s: usize, rank: usize) -> bool {
        let (lo, hi) = self.group[s];
        rank >= lo && rank < hi
    }

    /// Group size of supernode `s`.
    pub fn group_size(&self, s: usize) -> usize {
        self.group[s].1 - self.group[s].0
    }

    /// Validate nesting (`group(child) ⊆ group(parent)`) and layout/rank
    /// agreement.
    pub fn validate(&self, sym: &Symbolic) -> bool {
        for s in 0..sym.nsuper() {
            let (lo, hi) = self.group[s];
            if lo >= hi || hi > self.nranks {
                return false;
            }
            if self.layout[s].nranks() != hi - lo {
                return false;
            }
            let p = sym.tree.parent[s];
            if p != NONE {
                let (plo, phi) = self.group[p];
                if lo < plo || hi > phi {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::gen;
    use parfact_symbolic::{analyze, AmalgOpts};

    fn sym_for_grid() -> Symbolic {
        let a = gen::laplace2d(16, 16, gen::Stencil2d::FivePoint);
        let fill = parfact_order::order_matrix(&a, parfact_order::Method::default());
        let af = fill.apply_sym_lower(&a);
        analyze(&af, &AmalgOpts::default()).0
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(4), (2, 2));
        assert_eq!(grid_shape(6), (2, 3));
        assert_eq!(grid_shape(7), (1, 7));
        assert_eq!(grid_shape(16), (4, 4));
        assert_eq!(grid_shape(12), (3, 4));
    }

    #[test]
    fn proportional_mapping_is_nested_and_valid() {
        let sym = sym_for_grid();
        for p in [1, 2, 3, 4, 8, 16, 17] {
            let m = map_tree(&sym, p, MapStrategy::default());
            assert!(m.validate(&sym), "p={p}");
            // Roots own the whole machine.
            for &r in &sym.tree.roots {
                assert_eq!(m.group[r], (0, p));
            }
        }
    }

    #[test]
    fn proportional_mapping_uses_all_ranks_at_leaves() {
        let sym = sym_for_grid();
        let p = 8;
        let m = map_tree(&sym, p, MapStrategy::default());
        // Every rank must participate in at least one supernode.
        let mut used = vec![false; p];
        for s in 0..sym.nsuper() {
            let (lo, hi) = m.group[s];
            for r in lo..hi {
                used[r] = true;
            }
        }
        assert!(used.iter().all(|&u| u), "idle ranks: {used:?}");
    }

    #[test]
    fn flat_mapping_distributes_everything() {
        let sym = sym_for_grid();
        let m = map_tree(
            &sym,
            4,
            MapStrategy::Flat {
                use_2d: false,
                nb: 48,
            },
        );
        assert!(m.validate(&sym));
        assert!(m.group.iter().all(|&g| g == (0, 4)));
        assert!(m.layout.iter().all(|&l| l
            == Layout::Grid {
                pr: 1,
                pc: 4,
                nb: 48
            }));
    }

    #[test]
    fn one_rank_is_all_local() {
        let sym = sym_for_grid();
        let m = map_tree(&sym, 1, MapStrategy::default());
        assert!(m.layout.iter().all(|&l| l == Layout::Local));
    }

    #[test]
    fn rank_schedule_orders_locals_by_deadline() {
        let sym = sym_for_grid();
        let p = 8;
        let m = map_tree(&sym, p, MapStrategy::default());
        for me in 0..p {
            let sched = m.rank_schedule(&sym, me);
            assert!(sched.grid.windows(2).all(|w| w[0] < w[1]), "postorder");
            assert!(sched.local.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &(d, s) in &sched.local {
                assert!(d == usize::MAX || d < sched.grid.len());
                let par = sym.tree.parent[s];
                if par != NONE && m.layout[par] == Layout::Local {
                    // Local subtrees share one deadline and stay internally
                    // postordered, so running in list order is dependency-safe.
                    let at = |x| sched.local.iter().position(|&e| e == x).unwrap();
                    assert!(at((d, par)) > at((d, s)), "child before parent");
                }
            }
            let expect = (0..sym.nsuper()).filter(|&s| m.participates(s, me)).count();
            assert_eq!(sched.grid.len() + sched.local.len(), expect);
        }
    }

    #[test]
    fn deep_subtrees_localize() {
        let sym = sym_for_grid();
        let m = map_tree(&sym, 16, MapStrategy::default());
        // Leaves overwhelmingly map to single ranks under proportional
        // mapping (that is the point of subtree-to-subcube).
        let leaf_local = (0..sym.nsuper())
            .filter(|&s| sym.tree.children[s].is_empty())
            .filter(|&s| m.group_size(s) == 1)
            .count();
        let leaves = (0..sym.nsuper())
            .filter(|&s| sym.tree.children[s].is_empty())
            .count();
        // The tree is shallow after amalgamation, so demand a majority
        // rather than near-totality.
        assert!(
            2 * leaf_local >= leaves,
            "{leaf_local}/{leaves} leaves local"
        );
    }
}
