//! Shared-memory parallel triangular solves: the solve phase parallelized
//! over the assembly tree with real threads, mirroring the factorization's
//! tree parallelism.
//!
//! The forward sweep runs leaves-to-roots (a supernode is ready when its
//! children finished; its contribution block travels to the parent like an
//! update matrix), the backward sweep roots-to-leaves (a supernode is
//! ready when its parent finished and has published the x values at the
//! child's below-pivot rows). Both sweeps therefore expose exactly the
//! tree parallelism of the factorization — and inherit its limitation, the
//! serial top of the tree, which is why parallel solves gain less than
//! factorizations (cf. EXP-F4 on the distributed engine).
//!
//! All right-hand sides move as one `n x nrhs` column-major block: each
//! supernode panel is loaded once and applied to every column through the
//! batched `dense::solve` kernels, so the parallel solve keeps the BLAS-3
//! shape of the sequential blocked sweep.

use crate::backoff::Backoff;
use crate::error::FactorError;
use crate::factor::{Factor, FactorKind};
use crate::smp::resolve_threads;
use crossbeam_deque::{Injector, Steal};
use parfact_dense::solve as dsolve;
use parfact_symbolic::NONE;
use parfact_trace::{Collector, Phase, TraceLevel};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Solve `A x = b` with tree-parallel sweeps on `threads` OS threads
/// (0 = available parallelism). Results match [`Factor::solve`] to
/// floating-point roundoff (the parent-side accumulation order of child
/// contributions differs from the sequential sweep's global-vector order).
///
/// **Panics** if `b.len() != n`; use [`solve_smp_many`] for the checked
/// multi-RHS variant.
pub fn solve_smp(factor: &Factor, b: &[f64], threads: usize) -> Vec<f64> {
    solve_smp_many(factor, b, 1, threads).expect("solve_smp")
}

/// Multi-RHS tree-parallel solve: `b` is `n x nrhs` column-major.
/// Checked — a wrong `b.len()` returns [`FactorError::DimensionMismatch`].
pub fn solve_smp_many(
    factor: &Factor,
    b: &[f64],
    nrhs: usize,
    threads: usize,
) -> Result<Vec<f64>, FactorError> {
    solve_smp_many_traced(factor, b, nrhs, threads, &Collector::new(TraceLevel::Off))
}

/// [`solve_smp_many`] with instrumentation: per-worker `Phase::Solve`
/// spans (one per supernode per sweep) land in `tr` when its level records
/// spans, giving the timeline per-worker solve lanes.
pub fn solve_smp_many_traced(
    factor: &Factor,
    b: &[f64],
    nrhs: usize,
    threads: usize,
    tr: &Collector,
) -> Result<Vec<f64>, FactorError> {
    let sym = &factor.sym;
    let n = sym.n;
    if b.len() != n * nrhs {
        return Err(FactorError::DimensionMismatch {
            expected: n * nrhs,
            got: b.len(),
        });
    }
    let nthreads = resolve_threads(threads);
    if nthreads <= 1 || sym.nsuper() <= 1 || nrhs == 0 {
        // Literally the sequential blocked path — the fallback is bitwise
        // identical to `Factor::try_solve_many`.
        return factor.try_solve_many(b, nrhs);
    }
    let unit = factor.kind == FactorKind::Ldlt;
    let mut bp = vec![0.0f64; n * nrhs];
    for r in 0..nrhs {
        bp[r * n..(r + 1) * n].copy_from_slice(&factor.perm.apply_vec(&b[r * n..(r + 1) * n]));
    }
    let bp = bp;
    let nsuper = sym.nsuper();

    // ---- Forward sweep (leaves to roots). ----
    // Per-supernode pivot solution block (w x nrhs) and upward
    // contribution block ((f - w) x nrhs), both column-major.
    let xseg: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
    let contrib: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
    {
        let pending: Vec<AtomicUsize> = (0..nsuper)
            .map(|s| AtomicUsize::new(sym.tree.children[s].len()))
            .collect();
        let done = AtomicUsize::new(0);
        let injector = Injector::new();
        for s in 0..nsuper {
            if sym.tree.children[s].is_empty() {
                injector.push(s);
            }
        }
        std::thread::scope(|scope| {
            for wid in 0..nthreads {
                let (pending, done, injector) = (&pending, &done, &injector);
                let (xseg, contrib, bp) = (&xseg, &contrib, &bp);
                scope.spawn(move || {
                    let mut rec = tr.local(wid);
                    let mut backoff = Backoff::new();
                    loop {
                        if done.load(Ordering::Relaxed) >= nsuper {
                            break;
                        }
                        let s = match injector.steal() {
                            Steal::Success(s) => s,
                            Steal::Retry => continue,
                            Steal::Empty => {
                                backoff.snooze();
                                continue;
                            }
                        };
                        backoff.reset();
                        let tick = rec.start();
                        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
                        let w = c1 - c0;
                        let f = sym.front_order(s);
                        let m = f - w;
                        let blk = factor.panel(s);
                        // RHS front: pivot block + below-rows block.
                        let mut ypiv = vec![0.0f64; w * nrhs];
                        let mut ybelow = vec![0.0f64; m * nrhs];
                        for r in 0..nrhs {
                            ypiv[r * w..(r + 1) * w].copy_from_slice(&bp[r * n + c0..r * n + c1]);
                        }
                        for &c in &sym.tree.children[s] {
                            let cv = contrib[c].lock();
                            let mc = sym.sn_rows[c].len();
                            for (k, &r_row) in sym.sn_rows[c].iter().enumerate() {
                                let pos = if r_row < c1 {
                                    r_row - c0
                                } else {
                                    w + sym.sn_rows[s].binary_search(&r_row).expect("containment")
                                };
                                for r in 0..nrhs {
                                    if pos < w {
                                        ypiv[r * w + pos] += cv[r * mc + k];
                                    } else {
                                        ybelow[r * m + (pos - w)] += cv[r * mc + k];
                                    }
                                }
                            }
                        }
                        dsolve::trsm_ln(w, nrhs, blk, f, &mut ypiv, w, unit);
                        if m > 0 {
                            dsolve::gemm_block_sub(
                                m,
                                w,
                                nrhs,
                                &blk[w..],
                                f,
                                &ypiv,
                                w,
                                &mut ybelow,
                                m,
                            );
                        }
                        *contrib[s].lock() = ybelow;
                        *xseg[s].lock() = ypiv;
                        rec.stop(tick, Phase::Solve, Some(s));
                        done.fetch_add(1, Ordering::SeqCst);
                        let p = sym.tree.parent[s];
                        if p != NONE && pending[p].fetch_sub(1, Ordering::SeqCst) == 1 {
                            injector.push(p);
                        }
                    }
                });
            }
        });
    }
    let mut x = vec![0.0f64; n * nrhs];
    for s in 0..nsuper {
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        let w = c1 - c0;
        let seg = xseg[s].lock();
        for r in 0..nrhs {
            x[r * n + c0..r * n + c1].copy_from_slice(&seg[r * w..(r + 1) * w]);
        }
    }
    if unit {
        for r in 0..nrhs {
            let xr = &mut x[r * n..(r + 1) * n];
            for (xi, &di) in xr.iter_mut().zip(&factor.d) {
                *xi /= di;
            }
        }
    }

    // ---- Backward sweep (roots to leaves). ----
    // Each finished supernode publishes its final x block; a child reads
    // the x values at its own below rows from ancestors' published
    // blocks. Publish order guarantees parents complete first.
    {
        let xcell: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
        let xrows_of: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
        let done = AtomicUsize::new(0);
        let injector = Injector::new();
        for &r in &sym.tree.roots {
            injector.push(r);
        }
        std::thread::scope(|scope| {
            for wid in 0..nthreads {
                let (done, injector) = (&done, &injector);
                let (xcell, xrows_of, x) = (&xcell, &xrows_of, &x);
                scope.spawn(move || {
                    let mut rec = tr.local(wid);
                    let mut backoff = Backoff::new();
                    loop {
                        if done.load(Ordering::Relaxed) >= nsuper {
                            break;
                        }
                        let s = match injector.steal() {
                            Steal::Success(s) => s,
                            Steal::Retry => continue,
                            Steal::Empty => {
                                backoff.snooze();
                                continue;
                            }
                        };
                        backoff.reset();
                        let tick = rec.start();
                        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
                        let w = c1 - c0;
                        let f = sym.front_order(s);
                        let m = f - w;
                        let blk = factor.panel(s);
                        let xrows = xrows_of[s].lock().clone();
                        let mut xs = vec![0.0f64; w * nrhs];
                        for r in 0..nrhs {
                            xs[r * w..(r + 1) * w].copy_from_slice(&x[r * n + c0..r * n + c1]);
                        }
                        if m > 0 {
                            dsolve::gemm_block_t_sub(
                                m,
                                w,
                                nrhs,
                                &blk[w..],
                                f,
                                &xrows,
                                m,
                                &mut xs,
                                w,
                            );
                        }
                        dsolve::trsm_lt(w, nrhs, blk, f, &mut xs, w, unit);
                        // Publish, then release children: each child's xrows are
                        // a subset of (my cols ∪ my xrows).
                        for &c in &sym.tree.children[s] {
                            let mc = sym.sn_rows[c].len();
                            let mut vals = vec![0.0f64; mc * nrhs];
                            for (k, &r_row) in sym.sn_rows[c].iter().enumerate() {
                                if r_row < c1 {
                                    for r in 0..nrhs {
                                        vals[r * mc + k] = xs[r * w + (r_row - c0)];
                                    }
                                } else {
                                    let k2 =
                                        sym.sn_rows[s].binary_search(&r_row).expect("containment");
                                    for r in 0..nrhs {
                                        vals[r * mc + k] = xrows[r * m + k2];
                                    }
                                }
                            }
                            *xrows_of[c].lock() = vals;
                            injector.push(c);
                        }
                        *xcell[s].lock() = xs;
                        rec.stop(tick, Phase::Solve, Some(s));
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        for s in 0..nsuper {
            let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
            let w = c1 - c0;
            let cell = xcell[s].lock();
            for r in 0..nrhs {
                x[r * n + c0..r * n + c1].copy_from_slice(&cell[r * w..(r + 1) * w]);
            }
        }
    }
    let mut out = vec![0.0f64; n * nrhs];
    for r in 0..nrhs {
        out[r * n..(r + 1) * n].copy_from_slice(&factor.perm.apply_inv_vec(&x[r * n..(r + 1) * n]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{FactorOpts, SparseCholesky};
    use parfact_sparse::{gen, ops};

    fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .fold(0.0f64, |m, (x, y)| m.max((x - y).abs() / y.abs().max(1.0)))
    }

    #[test]
    fn smp_solve_matches_sequential_solve() {
        for a in [
            gen::laplace2d(17, 15, gen::Stencil2d::FivePoint),
            gen::laplace3d(6, 6, 6, gen::Stencil3d::SevenPoint),
            gen::elasticity3d(4, 3, 3),
        ] {
            let n = a.nrows();
            let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64 - 14.0).collect();
            let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
            let x_seq = chol.solve(&b);
            let x_par = solve_smp(chol.factor(), &b, 4);
            assert!(
                max_rel_diff(&x_par, &x_seq) < 1e-12,
                "parallel solve diverged"
            );
            assert!(ops::sym_residual_inf(&a, &x_par, &b) < 1e-12);
        }
    }

    #[test]
    fn smp_solve_many_matches_per_column_smp_solve_bitwise() {
        // The block sweep must be bitwise equal to running each column
        // through the single-RHS parallel path: the kernels promise
        // per-column op order independent of nrhs, and the tree schedule
        // does not affect any column's arithmetic.
        let a = gen::laplace3d(5, 5, 5, gen::Stencil3d::SevenPoint);
        let n = a.nrows();
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        for nrhs in [1usize, 2, 7] {
            let b: Vec<f64> = (0..n * nrhs)
                .map(|i| ((i * 7 + 3) % 23) as f64 - 11.0)
                .collect();
            let xblk = solve_smp_many(chol.factor(), &b, nrhs, 4).unwrap();
            for r in 0..nrhs {
                let xcol = solve_smp(chol.factor(), &b[r * n..(r + 1) * n], 4);
                for (bq, cq) in xblk[r * n..(r + 1) * n].iter().zip(&xcol) {
                    assert_eq!(bq.to_bits(), cq.to_bits(), "nrhs={nrhs} col={r}");
                }
            }
        }
    }

    #[test]
    fn smp_solve_ldlt() {
        use crate::factor::FactorKind;
        let a = gen::indefinite(80, 9);
        let b: Vec<f64> = (0..80).map(|i| (i % 7) as f64 - 3.0).collect();
        let chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().kind(FactorKind::Ldlt)).unwrap();
        let x_par = solve_smp(chol.factor(), &b, 3);
        assert!(ops::sym_residual_inf(&a, &x_par, &b) < 1e-10);
    }

    #[test]
    fn single_thread_falls_back() {
        let a = gen::tridiagonal(30);
        let b = vec![1.0; 30];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let x1 = solve_smp(chol.factor(), &b, 1);
        let x2 = chol.solve(&b);
        assert_eq!(x1, x2); // fallback is literally the sequential path
    }

    #[test]
    fn dimension_mismatch_is_an_error_not_a_panic() {
        let a = gen::tridiagonal(12);
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let bad = vec![1.0; 11];
        assert!(matches!(
            solve_smp_many(chol.factor(), &bad, 1, 4),
            Err(FactorError::DimensionMismatch {
                expected: 12,
                got: 11
            })
        ));
    }

    #[test]
    fn forest_handled() {
        // Disconnected blocks: multiple roots in both sweeps.
        let mut coo = parfact_sparse::coo::CooMatrix::new(20, 20);
        for b in 0..2 {
            let base = b * 10;
            for i in 0..10 {
                coo.push(base + i, base + i, 3.0);
                if i + 1 < 10 {
                    coo.push(base + i + 1, base + i, -1.0);
                }
            }
        }
        let a = coo.to_csc();
        let b = vec![2.0; 20];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let x = solve_smp(chol.factor(), &b, 4);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-13);
    }
}
