//! Shared-memory parallel triangular solves: the solve phase parallelized
//! over the assembly tree with real threads, mirroring the factorization's
//! tree parallelism.
//!
//! The forward sweep runs leaves-to-roots (a supernode is ready when its
//! children finished; its contribution vector travels to the parent like a
//! one-column update matrix), the backward sweep roots-to-leaves (a
//! supernode is ready when its parent finished and has published the x
//! values at the child's below-pivot rows). Both sweeps therefore expose
//! exactly the tree parallelism of the factorization — and inherit its
//! limitation, the serial top of the tree, which is why parallel solves
//! gain less than factorizations (cf. EXP-F4 on the distributed engine).

use crate::backoff::Backoff;
use crate::factor::{Factor, FactorKind};
use crate::smp::resolve_threads;
use crossbeam_deque::{Injector, Steal};
use parfact_dense::trsv;
use parfact_symbolic::NONE;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Solve `A x = b` with tree-parallel sweeps on `threads` OS threads
/// (0 = available parallelism). Results match [`Factor::solve`] to
/// floating-point roundoff (the parent-side accumulation order of child
/// contributions differs from the sequential sweep's global-vector order).
pub fn solve_smp(factor: &Factor, b: &[f64], threads: usize) -> Vec<f64> {
    let sym = &factor.sym;
    let n = sym.n;
    assert_eq!(b.len(), n);
    let nthreads = resolve_threads(threads);
    if nthreads <= 1 || sym.nsuper() <= 1 {
        return factor.solve(b);
    }
    let unit = factor.kind == FactorKind::Ldlt;
    let bp = factor.perm.apply_vec(b);
    let nsuper = sym.nsuper();

    // ---- Forward sweep (leaves to roots). ----
    // Per-supernode pivot solution segment and upward contribution.
    let xseg: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
    let contrib: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
    {
        let pending: Vec<AtomicUsize> = (0..nsuper)
            .map(|s| AtomicUsize::new(sym.tree.children[s].len()))
            .collect();
        let done = AtomicUsize::new(0);
        let injector = Injector::new();
        for s in 0..nsuper {
            if sym.tree.children[s].is_empty() {
                injector.push(s);
            }
        }
        std::thread::scope(|scope| {
            for _ in 0..nthreads {
                scope.spawn(|| {
                    let mut backoff = Backoff::new();
                    loop {
                        if done.load(Ordering::Relaxed) >= nsuper {
                            break;
                        }
                        let s = match injector.steal() {
                            Steal::Success(s) => s,
                            Steal::Retry => continue,
                            Steal::Empty => {
                                backoff.snooze();
                                continue;
                            }
                        };
                        backoff.reset();
                        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
                        let w = c1 - c0;
                        let f = sym.front_order(s);
                        let blk = factor.panel(s);
                        // RHS front: pivot segment + below rows.
                        let mut y = vec![0.0f64; f];
                        y[..w].copy_from_slice(&bp[c0..c1]);
                        for &c in &sym.tree.children[s] {
                            let cv = contrib[c].lock();
                            for (k, &r) in sym.sn_rows[c].iter().enumerate() {
                                let pos = if r < c1 {
                                    r - c0
                                } else {
                                    w + sym.sn_rows[s].binary_search(&r).expect("containment")
                                };
                                y[pos] += cv[k];
                            }
                        }
                        trsv::trsv_ln(w, blk, f, &mut y[..w], unit);
                        if f > w {
                            let (y1, y2) = y.split_at_mut(w);
                            trsv::gemv_sub(f - w, w, &blk[w..], f, y1, y2);
                        }
                        *contrib[s].lock() = y[w..].to_vec();
                        y.truncate(w);
                        *xseg[s].lock() = y;
                        done.fetch_add(1, Ordering::SeqCst);
                        let p = sym.tree.parent[s];
                        if p != NONE && pending[p].fetch_sub(1, Ordering::SeqCst) == 1 {
                            injector.push(p);
                        }
                    }
                });
            }
        });
    }
    let mut x = vec![0.0f64; n];
    for s in 0..nsuper {
        x[sym.sn_ptr[s]..sym.sn_ptr[s + 1]].copy_from_slice(&xseg[s].lock());
    }
    if unit {
        for (xi, &di) in x.iter_mut().zip(&factor.d) {
            *xi /= di;
        }
    }

    // ---- Backward sweep (roots to leaves). ----
    // Each finished supernode publishes its final x segment; a child reads
    // the x values at its own below rows from ancestors' published
    // segments. Publish order guarantees parents complete first.
    {
        let xcell: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
        let xrows_of: Vec<Mutex<Vec<f64>>> = (0..nsuper).map(|_| Mutex::new(Vec::new())).collect();
        let done = AtomicUsize::new(0);
        let injector = Injector::new();
        for &r in &sym.tree.roots {
            injector.push(r);
        }
        std::thread::scope(|scope| {
            for _ in 0..nthreads {
                scope.spawn(|| {
                    let mut backoff = Backoff::new();
                    loop {
                        if done.load(Ordering::Relaxed) >= nsuper {
                            break;
                        }
                        let s = match injector.steal() {
                            Steal::Success(s) => s,
                            Steal::Retry => continue,
                            Steal::Empty => {
                                backoff.snooze();
                                continue;
                            }
                        };
                        backoff.reset();
                        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
                        let w = c1 - c0;
                        let f = sym.front_order(s);
                        let blk = factor.panel(s);
                        let xrows = xrows_of[s].lock().clone();
                        let mut xs = x[c0..c1].to_vec();
                        if f > w {
                            trsv::gemv_t_sub(f - w, w, &blk[w..], f, &xrows, &mut xs);
                        }
                        trsv::trsv_lt(w, blk, f, &mut xs, unit);
                        // Publish, then release children: each child's xrows are
                        // a subset of (my cols ∪ my xrows).
                        for &c in &sym.tree.children[s] {
                            let vals: Vec<f64> = sym.sn_rows[c]
                                .iter()
                                .map(|&r| {
                                    if r < c1 {
                                        xs[r - c0]
                                    } else {
                                        let k =
                                            sym.sn_rows[s].binary_search(&r).expect("containment");
                                        xrows[k]
                                    }
                                })
                                .collect();
                            *xrows_of[c].lock() = vals;
                            injector.push(c);
                        }
                        *xcell[s].lock() = xs;
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        for s in 0..nsuper {
            x[sym.sn_ptr[s]..sym.sn_ptr[s + 1]].copy_from_slice(&xcell[s].lock());
        }
    }
    factor.perm.apply_inv_vec(&x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{FactorOpts, SparseCholesky};
    use parfact_sparse::{gen, ops};

    fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .fold(0.0f64, |m, (x, y)| m.max((x - y).abs() / y.abs().max(1.0)))
    }

    #[test]
    fn smp_solve_matches_sequential_solve() {
        for a in [
            gen::laplace2d(17, 15, gen::Stencil2d::FivePoint),
            gen::laplace3d(6, 6, 6, gen::Stencil3d::SevenPoint),
            gen::elasticity3d(4, 3, 3),
        ] {
            let n = a.nrows();
            let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64 - 14.0).collect();
            let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
            let x_seq = chol.solve(&b);
            let x_par = solve_smp(chol.factor(), &b, 4);
            assert!(
                max_rel_diff(&x_par, &x_seq) < 1e-12,
                "parallel solve diverged"
            );
            assert!(ops::sym_residual_inf(&a, &x_par, &b) < 1e-12);
        }
    }

    #[test]
    fn smp_solve_ldlt() {
        use crate::factor::FactorKind;
        let a = gen::indefinite(80, 9);
        let b: Vec<f64> = (0..80).map(|i| (i % 7) as f64 - 3.0).collect();
        let chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().kind(FactorKind::Ldlt)).unwrap();
        let x_par = solve_smp(chol.factor(), &b, 3);
        assert!(ops::sym_residual_inf(&a, &x_par, &b) < 1e-10);
    }

    #[test]
    fn single_thread_falls_back() {
        let a = gen::tridiagonal(30);
        let b = vec![1.0; 30];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let x1 = solve_smp(chol.factor(), &b, 1);
        let x2 = chol.solve(&b);
        assert_eq!(x1, x2); // fallback is literally the sequential path
    }

    #[test]
    fn forest_handled() {
        // Disconnected blocks: multiple roots in both sweeps.
        let mut coo = parfact_sparse::coo::CooMatrix::new(20, 20);
        for b in 0..2 {
            let base = b * 10;
            for i in 0..10 {
                coo.push(base + i, base + i, 3.0);
                if i + 1 < 10 {
                    coo.push(base + i + 1, base + i, -1.0);
                }
            }
        }
        let a = coo.to_csc();
        let b = vec![2.0; 20];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let x = solve_smp(chol.factor(), &b, 4);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-13);
    }
}
