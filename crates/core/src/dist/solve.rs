//! Distributed triangular solves.
//!
//! The solve follows the assembly tree like the factorization, but the
//! per-front work is tiny (O(front²·nrhs) flops against O(front³) for the
//! factorization), so the panel of each distributed supernode is gathered
//! to the supernode's **group leader**, which performs the front's solve
//! steps and exchanges right-hand-side segments with its parent's and
//! children's leaders. This gather-per-front pattern is exactly why solve
//! scales worse than factorization — a shape the experiments reproduce
//! (EXP-F4).
//!
//! Right-hand sides travel as column-major blocks: contribution and
//! x-row messages carry `rows x nrhs` flattened buffers, so the message
//! count stays flat while the payload (and the per-front flops) scale with
//! `nrhs` — batched solves amortize the latency-bound tree walk across
//! the whole block.

use crate::dist::{front, RankFactor};
use crate::mapping::{Layout, Mapping};
use parfact_dense::solve as dsolve;
use parfact_mpsim::Rank;
use parfact_symbolic::{Symbolic, NONE};
use parfact_trace::Phase;
use std::collections::HashMap;

use front::{
    PHASE_BWD_PANEL as PH_BWD_PANEL, PHASE_BWD_XROWS as PH_BWD_XROWS,
    PHASE_FWD_CONTRIB as PH_FWD_CONTRIB, PHASE_FWD_PANEL as PH_FWD_PANEL,
    PHASE_GATHER_X as PH_GATHER_X,
};

/// Pivot-column entries of this rank's blocks of supernode `s`, as a
/// triplet buffer in front-local coordinates.
fn pivot_pieces(sym: &Symbolic, rf: &RankFactor, s: usize) -> (Vec<u32>, Vec<f64>) {
    let df = &rf.dist_blocks[&s];
    let w = sym.sn_width(s);
    let nb = df.nb;
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (&(bi, bj), blk) in &df.blocks {
        if bj * nb >= w {
            continue;
        }
        let m_bi = df.mrows(bi);
        let n_bj = df.mrows(bj);
        for jc in 0..n_bj.min(w - bj * nb) {
            let lj = bj * nb + jc;
            let i0 = if bi == bj { jc } else { 0 };
            for i in i0..m_bi {
                let li = bi * nb + i;
                if li < lj {
                    continue;
                }
                idx.push(li as u32);
                idx.push(lj as u32);
                vals.push(blk[jc * m_bi + i]);
            }
        }
    }
    (idx, vals)
}

/// Assemble the full `f x w` panel of supernode `s` on the leader,
/// receiving pieces from every other group member (they must be executing
/// [`send_panel_pieces`] for the same `s` and `phase`).
fn gather_panel(
    rank: &mut Rank,
    sym: &Symbolic,
    map: &Mapping,
    rf: &RankFactor,
    s: usize,
    phase: u64,
) -> Vec<f64> {
    let f = sym.front_order(s);
    let w = sym.sn_width(s);
    let (lo, hi) = map.group[s];
    let mut panel = vec![0.0f64; f * w];
    rank.alloc(panel.len() * 8);
    for q in lo..hi {
        let (idx, vals) = if q == rank.rank() {
            pivot_pieces(sym, rf, s)
        } else {
            rank.recv::<(Vec<u32>, Vec<f64>)>(q, front::tag(s, phase))
        };
        for (k, &v) in vals.iter().enumerate() {
            panel[idx[2 * k + 1] as usize * f + idx[2 * k] as usize] = v;
        }
    }
    panel
}

/// Non-leader group members: ship pivot pieces to the leader.
fn send_panel_pieces(
    rank: &mut Rank,
    sym: &Symbolic,
    map: &Mapping,
    rf: &RankFactor,
    s: usize,
    phase: u64,
) {
    let lead = map.leader(s);
    let buf = pivot_pieces(sym, rf, s);
    rank.send(lead, front::tag(s, phase), buf);
}

/// SPMD distributed solve (`L Lᵀ X = B`, permuted space). Every rank calls
/// this with the (replicated) permuted right-hand-side block (`n x nrhs`
/// column-major); rank 0 returns the full solution block.
pub fn solve_rank(
    rank: &mut Rank,
    sym: &Symbolic,
    map: &Mapping,
    rf: &RankFactor,
    bp: &[f64],
    nrhs: usize,
) -> Option<Vec<f64>> {
    let me = rank.rank();
    let n = sym.n;
    debug_assert_eq!(bp.len(), n * nrhs);
    let nsuper = sym.nsuper();
    let mut x = bp.to_vec();
    // Leader-to-leader stashes for same-rank transfers.
    let mut fwd_stash: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut bwd_stash: HashMap<u64, Vec<f64>> = HashMap::new();

    // ---- Forward sweep. ----
    for s in 0..nsuper {
        if !map.participates(s, me) {
            continue;
        }
        let lead = map.leader(s);
        let is_dist = matches!(map.layout[s], Layout::Grid { .. });
        if me != lead {
            if is_dist {
                send_panel_pieces(rank, sym, map, rf, s, PH_FWD_PANEL);
            }
            continue;
        }
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        let w = c1 - c0;
        let f = sym.front_order(s);
        let m = f - w;
        let panel: std::borrow::Cow<'_, [f64]> = if is_dist {
            std::borrow::Cow::Owned(gather_panel(rank, sym, map, rf, s, PH_FWD_PANEL))
        } else {
            std::borrow::Cow::Borrowed(&rf.local_panels[&s])
        };
        // RHS front: pivot block then below-rows block, column-major.
        let mut ypiv = vec![0.0f64; w * nrhs];
        let mut ybelow = vec![0.0f64; m * nrhs];
        for r in 0..nrhs {
            ypiv[r * w..(r + 1) * w].copy_from_slice(&x[r * n + c0..r * n + c1]);
        }
        // Children contributions.
        for &c in &sym.tree.children[s] {
            let clead = map.leader(c);
            let contrib = if clead == me {
                fwd_stash
                    .remove(&front::tag(c, PH_FWD_CONTRIB))
                    .expect("missing stashed forward contribution")
            } else {
                rank.recv::<Vec<f64>>(clead, front::tag(c, PH_FWD_CONTRIB))
            };
            let mc = sym.sn_rows[c].len();
            for (k, &r_row) in sym.sn_rows[c].iter().enumerate() {
                let pos = if r_row < c1 {
                    r_row - c0
                } else {
                    w + sym.sn_rows[s].binary_search(&r_row).expect("containment")
                };
                for r in 0..nrhs {
                    if pos < w {
                        ypiv[r * w + pos] += contrib[r * mc + k];
                    } else {
                        ybelow[r * m + (pos - w)] += contrib[r * mc + k];
                    }
                }
            }
        }
        dsolve::trsm_ln(w, nrhs, &panel, f, &mut ypiv, w, false);
        rank.compute_as((w * w * nrhs) as f64, Phase::Solve, Some(s));
        if m > 0 {
            dsolve::gemm_block_sub(m, w, nrhs, &panel[w..], f, &ypiv, w, &mut ybelow, m);
            rank.compute_as((2 * m * w * nrhs) as f64, Phase::Solve, Some(s));
        }
        for r in 0..nrhs {
            x[r * n + c0..r * n + c1].copy_from_slice(&ypiv[r * w..(r + 1) * w]);
        }
        let parent = sym.tree.parent[s];
        if parent != NONE {
            let plead = map.leader(parent);
            if plead == me {
                fwd_stash.insert(front::tag(s, PH_FWD_CONTRIB), ybelow);
            } else {
                rank.send(plead, front::tag(s, PH_FWD_CONTRIB), ybelow);
            }
        }
        if is_dist {
            rank.free(f * w * 8);
        }
    }

    // ---- Backward sweep. ----
    for s in (0..nsuper).rev() {
        if !map.participates(s, me) {
            continue;
        }
        let lead = map.leader(s);
        let is_dist = matches!(map.layout[s], Layout::Grid { .. });
        if me != lead {
            if is_dist {
                send_panel_pieces(rank, sym, map, rf, s, PH_BWD_PANEL);
            }
            continue;
        }
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        let w = c1 - c0;
        let f = sym.front_order(s);
        let m = f - w;
        let panel: std::borrow::Cow<'_, [f64]> = if is_dist {
            std::borrow::Cow::Owned(gather_panel(rank, sym, map, rf, s, PH_BWD_PANEL))
        } else {
            std::borrow::Cow::Borrowed(&rf.local_panels[&s])
        };
        // x at this supernode's below rows (`m x nrhs`), provided by the
        // parent's leader.
        let parent = sym.tree.parent[s];
        let xrows: Vec<f64> = if parent == NONE {
            vec![0.0f64; m * nrhs]
        } else {
            let plead = map.leader(parent);
            if plead == me {
                bwd_stash
                    .remove(&front::tag(s, PH_BWD_XROWS))
                    .expect("missing stashed backward x-rows")
            } else {
                rank.recv::<Vec<f64>>(plead, front::tag(s, PH_BWD_XROWS))
            }
        };
        if m > 0 {
            dsolve::gemm_block_t_sub(m, w, nrhs, &panel[w..], f, &xrows, m, &mut x[c0..], n);
            rank.compute_as((2 * m * w * nrhs) as f64, Phase::Solve, Some(s));
        }
        dsolve::trsm_lt(w, nrhs, &panel, f, &mut x[c0..], n, false);
        rank.compute_as((w * w * nrhs) as f64, Phase::Solve, Some(s));
        // Provide x-rows to every child's leader. A child's rows live in my
        // columns or in my own x-rows (containment invariant).
        for &c in &sym.tree.children[s] {
            let mc = sym.sn_rows[c].len();
            let mut vals = vec![0.0f64; mc * nrhs];
            for (k, &r_row) in sym.sn_rows[c].iter().enumerate() {
                if r_row < c1 {
                    for r in 0..nrhs {
                        vals[r * mc + k] = x[r * n + r_row];
                    }
                } else {
                    let k2 = sym.sn_rows[s].binary_search(&r_row).expect("containment");
                    for r in 0..nrhs {
                        vals[r * mc + k] = xrows[r * m + k2];
                    }
                }
            }
            let clead = map.leader(c);
            if clead == me {
                bwd_stash.insert(front::tag(c, PH_BWD_XROWS), vals);
            } else {
                rank.send(clead, front::tag(c, PH_BWD_XROWS), vals);
            }
        }
        if is_dist {
            rank.free(f * w * 8);
        }
    }

    // ---- Gather solution segments to rank 0. ----
    if me == 0 {
        for s in 0..nsuper {
            let lead = map.leader(s);
            if lead != 0 {
                let seg = rank.recv::<Vec<f64>>(lead, front::tag(s, PH_GATHER_X));
                let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
                let w = c1 - c0;
                for r in 0..nrhs {
                    x[r * n + c0..r * n + c1].copy_from_slice(&seg[r * w..(r + 1) * w]);
                }
            }
        }
        Some(x)
    } else {
        for s in 0..nsuper {
            if map.leader(s) == me {
                let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
                let w = c1 - c0;
                let mut seg = vec![0.0f64; w * nrhs];
                for r in 0..nrhs {
                    seg[r * w..(r + 1) * w].copy_from_slice(&x[r * n + c0..r * n + c1]);
                }
                rank.send(0, front::tag(s, PH_GATHER_X), seg);
            }
        }
        None
    }
}
