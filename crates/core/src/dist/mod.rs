//! Distributed-memory multifrontal factorization on the machine simulator.
//!
//! Every rank runs [`factorize_rank`] (SPMD). Supernodes mapped to a single
//! rank (the local subtrees produced by subtree-to-subcube mapping) are
//! factored with the sequential kernel; supernodes mapped to a rank group
//! are factored as block-cyclic [`front::DistFront`]s. Between fronts, the
//! **parallel extend-add** routes every Schur-complement entry from the
//! ranks that computed it to the ranks that own its position in the parent
//! front, as point-to-point messages.
//!
//! The input matrix and the symbolic analysis are replicated (read-only)
//! across ranks — in a production code `A` would be distributed, but that
//! affects none of the algorithms under study; fronts and factor blocks,
//! which dominate memory, are fully distributed and tracked per rank.

pub mod front;
pub mod solve;

use crate::error::FactorError;
use crate::factor::{Factor, FactorKind};
use crate::frontal::{assemble_front, extract_panel, extract_update, FrontScatter, UpdateMatrix};
use crate::mapping::RankSchedule;
use crate::mapping::{Layout, Mapping};
use front::DistFront;
use parfact_dense::chol;
use parfact_mpsim::{FaultCounts, FaultPlan, Machine, Rank, RunVerdict};
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::perm::Perm;
use parfact_symbolic::{Symbolic, NONE};
use parfact_trace::{Phase, SpanEvent};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Extend-add message tag: the namespace is per *child* (sender side), so
/// concurrent children of one parent cannot collide. Goes through the
/// single [`front::tag`] constructor like every other tag in the engine.
fn ext_tag(child: usize) -> u64 {
    front::tag(child, front::PHASE_EXTADD)
}

/// Per-rank factor state after a distributed factorization.
///
/// `BTreeMap` rather than `HashMap`: the gather path and the memory
/// accounting iterate these maps, and the determinism contract (enforced
/// by the R2 lint) keeps every iterated container in the engine ordered.
#[derive(Clone)]
pub struct RankFactor {
    /// Panels of locally-factored supernodes (`f x w`, same layout as a
    /// [`Factor`] slab panel).
    pub local_panels: BTreeMap<usize, Vec<f64>>,
    /// Owned blocks of distributed supernodes (pivot columns retained).
    pub dist_blocks: BTreeMap<usize, DistFront>,
}

impl RankFactor {
    /// Bytes of factor data held by this rank (pivot columns only for
    /// distributed supernodes).
    pub fn factor_bytes(&self, sym: &Symbolic) -> usize {
        let mut b = 0usize;
        for p in self.local_panels.values() {
            b += p.len() * 8;
        }
        for (s, df) in &self.dist_blocks {
            let w = sym.sn_width(*s);
            for (&(_, bj), blk) in &df.blocks {
                if bj * df.nb < w {
                    b += blk.len() * 8;
                }
            }
        }
        b
    }
}

/// One extend-add contribution list headed to a single rank: **values
/// only**, in the canonical enumeration order both sides can regenerate.
type ExtBuf = Vec<f64>;

/// Mutable per-rank state threaded through the supernode processors.
///
/// `Clone` is the checkpoint mechanism: a snapshot of this struct (plus the
/// local-schedule cursor) after a completed distributed front is everything
/// a rank needs to resume from that epoch.
#[derive(Clone)]
struct RankState {
    out: RankFactor,
    /// Updates of locally-factored supernodes awaiting a local parent.
    local_updates: HashMap<usize, UpdateMatrix>,
    /// Extend-add contributions this rank stashed for itself (dest == self).
    self_stash: HashMap<u64, ExtBuf>,
    scatter: FrontScatter,
    front_buf: Vec<f64>,
    /// Checkpoint mode only: extend-add sends destined to a distributed
    /// parent are buffered here, keyed by the *destination* supernode, and
    /// flushed when this rank itself reaches that front ([`flush_pending`]).
    /// Deferring the send to the epoch that consumes it means a completed
    /// epoch never has messages in flight — which is what makes a set of
    /// per-rank snapshots at the same epoch a consistent global state.
    pending: HashMap<usize, Vec<(usize, u64, ExtBuf)>>,
    /// True when sends must be deferred into `pending` (checkpoint mode).
    defer: bool,
}

impl RankState {
    fn new(sym: &Symbolic) -> Self {
        RankState {
            out: RankFactor {
                local_panels: BTreeMap::new(),
                dist_blocks: BTreeMap::new(),
            },
            local_updates: HashMap::new(),
            self_stash: HashMap::new(),
            scatter: FrontScatter::new(sym.n),
            front_buf: Vec::new(),
            pending: HashMap::new(),
            defer: false,
        }
    }
}

/// The SPMD factorization program. All ranks call this with identical
/// (replicated) `ap`, `sym`, `map`. Only `FactorKind::Llt` is supported
/// distributed (the paper's SPD scaling study); use the SMP/seq engines for
/// LDLᵀ.
///
/// With `sync` set, every rank walks its supernodes in strict postorder
/// over blocking sends/receives — the ablation baseline (EXP-A7).
/// Otherwise the rank runs an **event-driven schedule**: distributed
/// supernodes keep their postorder (their collectives must line up across
/// the group), but local subtrees are moved around them by deadline — a
/// subtree must finish before the distributed ancestor that consumes its
/// update runs, and is otherwise free to fill the gaps while extend-add
/// messages for the next distributed front are still in flight. Sends go
/// out nonblocking ([`Rank::isend`]) so their modelled transfer time hides
/// under that compute. Factors are **bitwise identical** either way:
/// message matching stays `(src, tag)` and extend-add contributions are
/// accumulated in canonical (child ascending, source-rank ascending) order
/// no matter when they arrived.
pub fn factorize_rank(
    rank: &mut Rank,
    ap: &CscMatrix,
    sym: &Symbolic,
    map: &Mapping,
    sync: bool,
) -> Result<RankFactor, FactorError> {
    let me = rank.rank();
    let nsuper = sym.nsuper();
    let mut st = RankState::new(sym);

    if sync {
        for s in 0..nsuper {
            if !map.participates(s, me) {
                continue;
            }
            match map.layout[s] {
                Layout::Local => do_local(rank, ap, sym, map, s, sync, &mut st)?,
                Layout::Grid { .. } => do_grid(rank, ap, sym, map, s, sync, &mut st, None)?,
            }
        }
        return Ok(st.out);
    }

    let sched = map.rank_schedule(sym, me);
    let mut next = 0usize; // next unprocessed entry of sched.local
    for (gi, &g) in sched.grid.iter().enumerate() {
        // Local subtrees due at this distributed front must finish first:
        // peer ranks of the group block on their extend-add contributions,
        // and entering the front's collectives while they still wait would
        // deadlock the group.
        while next < sched.local.len() && sched.local[next].0 <= gi {
            do_local(rank, ap, sym, map, sched.local[next].1, sync, &mut st)?;
            next += 1;
        }
        // Probe the extend-add messages this front expects. `probe_all`
        // waits (physically) until every header is posted but leaves the
        // virtual clock untouched — the latest arrival is the horizon the
        // front cannot start before, so any local subtree whose estimated
        // cost fits below it runs for free, hidden under the wait.
        let expected = expected_ext_keys(sym, map, g, me);
        let arrivals = rank.probe_all(&expected);
        let horizon = arrivals.iter().fold(rank.clock(), |m, &a| m.max(a));
        while next < sched.local.len() {
            let s = sched.local[next].1;
            if rank.clock() + local_cost_estimate(sym, s, rank.model()) > horizon {
                break;
            }
            do_local(rank, ap, sym, map, s, sync, &mut st)?;
            next += 1;
        }
        // Drain the messages in virtual-arrival order, then let `do_grid`
        // fold the buffers in canonical order (bitwise determinism).
        let mut bufs: HashMap<(usize, u64), ExtBuf> = HashMap::new();
        let mut keys = expected;
        while !keys.is_empty() {
            let (i, buf) = rank.wait_any::<ExtBuf>(&keys);
            bufs.insert(keys[i], buf);
            keys.swap_remove(i);
        }
        do_grid(rank, ap, sym, map, g, sync, &mut st, Some(bufs))?;
    }
    // Local subtrees nothing distributed ever consumes (they end at roots).
    while next < sched.local.len() {
        do_local(rank, ap, sym, map, sched.local[next].1, sync, &mut st)?;
        next += 1;
    }
    Ok(st.out)
}

/// One rank's restartable frontier: the full mutable state after a
/// completed distributed front, plus how far through the local schedule the
/// rank had advanced. Everything downstream of this point can be replayed.
#[derive(Clone)]
struct RankSnapshot {
    st: RankState,
    next_local: usize,
}

/// Per-rank checkpoint snapshots, shared across simulator runs so a
/// restarted machine can resume from the last epoch every rank completed.
///
/// An **epoch** is the global postorder index of a distributed (grid)
/// front. Under the deferred-send discipline of [`factorize_rank_ckpt`], a
/// rank that has completed front `g` has consumed every message any front
/// `<= g` needed and has *sent nothing* any front `> g` consumes (those
/// sends sit in `RankState::pending`, inside the snapshot). A cut at the
/// minimum completed epoch across ranks is therefore consistent: restoring
/// every rank to its largest snapshot at-or-below the cut re-creates a
/// machine state with no in-flight messages, from which a fresh run
/// replays to a bitwise-identical factor.
pub struct CheckpointStore {
    slots: Vec<Mutex<BTreeMap<usize, RankSnapshot>>>,
}

impl CheckpointStore {
    /// Empty store for a `p`-rank machine.
    pub fn new(p: usize) -> Self {
        CheckpointStore {
            slots: (0..p).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    /// Number of snapshots currently held for rank `r` (diagnostics).
    pub fn epochs(&self, r: usize) -> usize {
        self.slots[r].lock().unwrap().len()
    }

    fn record(&self, me: usize, g: usize, st: &RankState, next_local: usize) {
        self.slots[me].lock().unwrap().insert(
            g,
            RankSnapshot {
                st: st.clone(),
                next_local,
            },
        );
    }

    /// The latest snapshot of rank `me`, with its position in the rank's
    /// grid schedule (resume restarts at `pos + 1`).
    fn restore(&self, me: usize, sched: &RankSchedule) -> Option<(usize, RankSnapshot)> {
        let slot = self.slots[me].lock().unwrap();
        let (&g, snap) = slot.iter().next_back()?;
        let pos = sched
            .grid
            .iter()
            .position(|&x| x == g)
            .expect("snapshot for a front outside this rank's schedule");
        Some((pos, snap.clone()))
    }

    /// After a failed attempt: compute the machine-wide consistent cut (the
    /// first epoch some rank has not completed) and drop every snapshot at
    /// or beyond it, so the next attempt restores a mutually consistent
    /// state. Returns the cut (exclusive) for diagnostics; `usize::MAX`
    /// means every rank finished its distributed work.
    pub fn rewind_to_consistent_cut(&self, sym: &Symbolic, map: &Mapping) -> usize {
        let mut cut = usize::MAX;
        for (r, slot) in self.slots.iter().enumerate() {
            let sched = map.rank_schedule(sym, r);
            let last = slot.lock().unwrap().keys().next_back().copied();
            // First own front this rank has *not* completed: everything
            // strictly below it is done from r's perspective.
            let next_own = match last {
                None => sched.grid.first().copied(),
                Some(l) => sched.grid.iter().copied().find(|&g| g > l),
            };
            cut = cut.min(next_own.unwrap_or(usize::MAX));
        }
        for slot in &self.slots {
            slot.lock().unwrap().retain(|&g, _| g < cut);
        }
        cut
    }
}

/// Flush deferred extend-add sends destined to front `s` (checkpoint mode).
fn flush_pending(rank: &mut Rank, st: &mut RankState, s: usize) {
    if let Some(list) = st.pending.remove(&s) {
        for (dst, tag, buf) in list {
            rank.isend(dst, tag, buf);
        }
    }
}

/// [`factorize_rank`] with epoch checkpointing: the event-driven schedule,
/// but extend-add sends to distributed parents are deferred until the
/// sender itself reaches the consuming front, and the full rank state is
/// snapshotted into `store` after every completed distributed front.
///
/// On entry the rank restores the latest snapshot the store holds for it
/// (the recovery driver has already rewound the store to a consistent cut)
/// and resumes from the epoch after it — so a restarted machine re-executes
/// only the epochs past the cut. The factor is **bitwise identical** to the
/// fault-free [`factorize_rank`] runs: deferral changes only *when*
/// messages travel, never the canonical accumulation order.
pub fn factorize_rank_ckpt(
    rank: &mut Rank,
    ap: &CscMatrix,
    sym: &Symbolic,
    map: &Mapping,
    store: &CheckpointStore,
) -> Result<RankFactor, FactorError> {
    let me = rank.rank();
    let sched = map.rank_schedule(sym, me);
    let (mut st, mut next, start) = match store.restore(me, &sched) {
        Some((pos, snap)) => (snap.st, snap.next_local, pos + 1),
        None => (RankState::new(sym), 0, 0),
    };
    st.defer = true;
    for (gi, &g) in sched.grid.iter().enumerate().skip(start) {
        // Due local subtrees first (their updates may feed this front),
        // then flush this front's deferred sends before any blocking probe
        // — every participant flushes before it waits, so the group cannot
        // deadlock on its own deferred messages.
        while next < sched.local.len() && sched.local[next].0 <= gi {
            do_local(rank, ap, sym, map, sched.local[next].1, false, &mut st)?;
            next += 1;
        }
        flush_pending(rank, &mut st, g);
        let expected = expected_ext_keys(sym, map, g, me);
        let arrivals = rank.probe_all(&expected);
        let horizon = arrivals.iter().fold(rank.clock(), |m, &a| m.max(a));
        while next < sched.local.len() {
            let s = sched.local[next].1;
            if rank.clock() + local_cost_estimate(sym, s, rank.model()) > horizon {
                break;
            }
            do_local(rank, ap, sym, map, s, false, &mut st)?;
            next += 1;
        }
        let mut bufs: HashMap<(usize, u64), ExtBuf> = HashMap::new();
        let mut keys = expected;
        while !keys.is_empty() {
            let (i, buf) = rank.wait_any::<ExtBuf>(&keys);
            bufs.insert(keys[i], buf);
            keys.swap_remove(i);
        }
        do_grid(rank, ap, sym, map, g, false, &mut st, Some(bufs))?;
        store.record(me, g, &st, next);
    }
    while next < sched.local.len() {
        do_local(rank, ap, sym, map, sched.local[next].1, false, &mut st)?;
        next += 1;
    }
    Ok(st.out)
}

/// Factor one single-rank supernode (sequential kernel) and route its
/// update toward the parent.
fn do_local(
    rank: &mut Rank,
    ap: &CscMatrix,
    sym: &Symbolic,
    map: &Mapping,
    s: usize,
    sync: bool,
    st: &mut RankState,
) -> Result<(), FactorError> {
    let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
    let w = c1 - c0;
    let f = sym.front_order(s);
    let parent = sym.tree.parent[s];
    // Children of a local supernode are local on this rank.
    let child_updates: Vec<UpdateMatrix> = sym.tree.children[s]
        .iter()
        .map(|&c| st.local_updates.remove(&c).expect("local child update"))
        .collect();
    rank.alloc(f * f * 8);
    assemble_front(
        ap,
        sym,
        s,
        &mut st.scatter,
        &child_updates,
        &mut st.front_buf,
    );
    rank.compute_as(
        assembly_flops(sym, &child_updates),
        Phase::ExtendAdd,
        Some(s),
    );
    chol::partial_potrf(f, w, &mut st.front_buf, f).map_err(|e| FactorError::from_dense(e, c0))?;
    rank.compute_as(front::flops_partial(f, w), Phase::Panel, Some(s));
    let panel = extract_panel(&st.front_buf, f, w);
    rank.alloc(panel.len() * 8);
    st.out.local_panels.insert(s, panel);
    if f > w {
        let upd = extract_update(sym, s, &st.front_buf, f);
        route_update(rank, sym, map, s, parent, upd, sync, st);
    }
    rank.free(f * f * 8);
    Ok(())
}

/// Factor one distributed supernode: assemble A entries and extend-add
/// contributions (from `bufs` when the event-driven scheduler pre-drained
/// them, from blocking receives otherwise), run the block-cyclic partial
/// factorization, and ship the Schur complement to the parent.
#[allow(clippy::too_many_arguments)]
fn do_grid(
    rank: &mut Rank,
    ap: &CscMatrix,
    sym: &Symbolic,
    map: &Mapping,
    s: usize,
    sync: bool,
    st: &mut RankState,
    mut bufs: Option<HashMap<(usize, u64), ExtBuf>>,
) -> Result<(), FactorError> {
    let me = rank.rank();
    let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
    let w = c1 - c0;
    let f = sym.front_order(s);
    let parent = sym.tree.parent[s];
    let Layout::Grid { pr, pc, nb } = map.layout[s] else {
        unreachable!("do_grid on a local supernode");
    };
    let lo = map.group[s].0;
    let mut df = DistFront::new(s, f, w, pr, pc, nb, lo, rank);
    // Assemble my share of the original-matrix entries.
    st.scatter.set(sym, s);
    let mut nassemble = 0usize;
    for c in c0..c1 {
        let (rows, vals) = ap.col(c);
        let lj = c - c0;
        for (&r, &v) in rows.iter().zip(vals) {
            let li = st.scatter.local(r);
            if df.owns_entry(li, lj) {
                df.add(li, lj, v);
                nassemble += 1;
            }
        }
    }
    rank.compute_as(nassemble as f64, Phase::ExtendAdd, Some(s));
    // Fold extend-add contributions: one message from every rank of every
    // child's group, accumulated children-ascending, sources in group
    // order — the canonical order both schedules share.
    for &c in &sym.tree.children[s] {
        let (clo, chi) = map.group[c];
        let plocal = parent_local_map(sym, s, &sym.sn_rows[c], w, c0);
        for q in clo..chi {
            let vals = if q == me {
                st.self_stash.remove(&ext_tag(c)).unwrap_or_default()
            } else if let Some(bufs) = bufs.as_mut() {
                bufs.remove(&(q, ext_tag(c)))
                    .expect("pre-drained extend-add buffer")
            } else {
                rank.recv::<ExtBuf>(q, ext_tag(c))
            };
            // Walk q's canonical coordinate stream; my share of the values
            // arrives in exactly that order.
            let mut next = 0usize;
            enumerate_child_schur_coords(sym, map, c, q, |i_idx, j_idx| {
                // plocal is monotone, so i_idx >= j_idx keeps (gi, gj) in
                // the lower triangle.
                let (gi, gj) = (plocal[i_idx], plocal[j_idx]);
                if df.owns_entry(gi, gj) {
                    df.add(gi, gj, vals[next]);
                    next += 1;
                }
            });
            debug_assert_eq!(next, vals.len(), "extend-add stream mismatch");
            rank.compute_as(vals.len() as f64, Phase::ExtendAdd, Some(s));
        }
    }
    // Distributed partial factorization (panel lookahead when async).
    df.factorize(rank, c0, !sync)?;
    // Ship the Schur complement to the parent.
    if f > w && parent != NONE {
        send_dist_update(rank, sym, map, s, parent, &df, sync, st);
    }
    // Retain pivot blocks; release pure-Schur blocks.
    let released = release_schur_blocks(&mut df);
    rank.free(released);
    st.out.dist_blocks.insert(s, df);
    Ok(())
}

/// The `(src, tag)` keys of every extend-add message distributed supernode
/// `s` expects from remote ranks.
fn expected_ext_keys(sym: &Symbolic, map: &Mapping, s: usize, me: usize) -> Vec<(usize, u64)> {
    let mut keys = Vec::new();
    for &c in &sym.tree.children[s] {
        let (clo, chi) = map.group[c];
        for q in clo..chi {
            if q != me {
                keys.push((q, ext_tag(c)));
            }
        }
    }
    keys
}

/// Modelled seconds a local supernode's factorization will take — the
/// greedy-fill budget check of the event-driven scheduler. Mirrors the
/// `compute` charges of [`do_local`] (assembly + partial factorization).
fn local_cost_estimate(sym: &Symbolic, s: usize, model: &parfact_mpsim::model::CostModel) -> f64 {
    let f = sym.front_order(s);
    let w = sym.sn_width(s);
    let mut fl = front::flops_partial(f, w);
    for &c in &sym.tree.children[s] {
        let r = sym.front_order(c) - sym.sn_width(c);
        fl += (r * (r + 1) / 2) as f64;
    }
    fl * model.flop_time_s
}

/// Approximate assembly cost: one add per update entry.
fn assembly_flops(sym: &Symbolic, updates: &[UpdateMatrix]) -> f64 {
    updates
        .iter()
        .map(|u| {
            let r = u.order(sym);
            (r * (r + 1) / 2) as f64
        })
        .sum()
}

/// Route a locally-computed update matrix toward the parent supernode.
///
/// Extend-add messages carry **values only**: the coordinate stream is
/// deterministic (canonical enumeration order shared by sender and
/// receiver), so indices never go on the wire. The async schedule sends
/// them nonblocking — the receiver matches by `(src, tag)` whenever it
/// gets there, and the modelled transfer hides under the sender's
/// subsequent compute.
#[allow(clippy::too_many_arguments)]
fn route_update(
    rank: &mut Rank,
    sym: &Symbolic,
    map: &Mapping,
    s: usize,
    parent: usize,
    upd: UpdateMatrix,
    sync: bool,
    st: &mut RankState,
) {
    debug_assert_ne!(parent, NONE);
    match map.layout[parent] {
        Layout::Local => {
            // Parent runs on this same rank (nested ranges).
            st.local_updates.insert(s, upd);
        }
        Layout::Grid { pr, pc, nb } => {
            let (plo, _) = map.group[parent];
            let plocal = parent_local_map(
                sym,
                parent,
                upd.rows(sym),
                sym.sn_width(parent),
                sym.sn_ptr[parent],
            );
            let np = pr * pc;
            // Per-destination-rank slices of the update (Vec indexed by
            // relative grid rank, so the emission order below is fixed).
            let mut parts: Vec<ExtBuf> = vec![Default::default(); np];
            let r = upd.order(sym);
            // Canonical order for a local child: column-major lower.
            for j in 0..r {
                let lj = plocal[j];
                for i in j..r {
                    let li = plocal[i];
                    let (bi, bj) = (li / nb, lj / nb);
                    let rel = (bi % pr) * pc + (bj % pc);
                    parts[rel].push(upd.data[j * r + i]);
                }
            }
            for (rel, buf) in parts.into_iter().enumerate() {
                let dst = plo + rel;
                if dst == rank.rank() {
                    st.self_stash.insert(ext_tag(s), buf);
                } else if st.defer {
                    st.pending
                        .entry(parent)
                        .or_default()
                        .push((dst, ext_tag(s), buf));
                } else if sync {
                    rank.send(dst, ext_tag(s), buf);
                } else {
                    rank.isend(dst, ext_tag(s), buf);
                }
            }
        }
    }
}

/// Send a distributed front's Schur entries to the parent's owners
/// (values only; coordinates are regenerated by the receiver).
#[allow(clippy::too_many_arguments)]
fn send_dist_update(
    rank: &mut Rank,
    sym: &Symbolic,
    map: &Mapping,
    s: usize,
    parent: usize,
    df: &DistFront,
    sync: bool,
    st: &mut RankState,
) {
    let w = df.w;
    let rows = &sym.sn_rows[s];
    let plocal = parent_local_map(sym, parent, rows, sym.sn_width(parent), sym.sn_ptr[parent]);
    match map.layout[parent] {
        Layout::Local => {
            // Nested rank groups make this impossible: a parent's group
            // contains the child's, so it cannot be smaller.
            unreachable!("a distributed front cannot have a single-rank parent");
        }
        Layout::Grid { pr, pc, nb } => {
            let (plo, _) = map.group[parent];
            let np = pr * pc;
            // Per-destination-rank slices, indexed by relative grid rank.
            let mut parts: Vec<ExtBuf> = vec![Default::default(); np];
            for_each_schur_entry(df, w, |li, lj, v| {
                let (gi, gj) = (plocal[li - w], plocal[lj - w]);
                let (bi, bj) = (gi / nb, gj / nb);
                let rel = (bi % pr) * pc + (bj % pc);
                parts[rel].push(v);
            });
            for (rel, buf) in parts.into_iter().enumerate() {
                let dst = plo + rel;
                if dst == rank.rank() {
                    st.self_stash.insert(ext_tag(s), buf);
                } else if st.defer {
                    st.pending
                        .entry(parent)
                        .or_default()
                        .push((dst, ext_tag(s), buf));
                } else if sync {
                    rank.send(dst, ext_tag(s), buf);
                } else {
                    rank.isend(dst, ext_tag(s), buf);
                }
            }
        }
    }
}

/// Enumerate the canonical Schur coordinate stream of a *child* as held by
/// machine rank `q` — the receiver-side mirror of the senders above. Emits
/// indices into the child's `sn_rows` (so `(i_idx, j_idx)` with
/// `i_idx >= j_idx`).
fn enumerate_child_schur_coords(
    sym: &Symbolic,
    map: &Mapping,
    child: usize,
    q: usize,
    mut cb: impl FnMut(usize, usize),
) {
    let w = sym.sn_width(child);
    let f = sym.front_order(child);
    match map.layout[child] {
        Layout::Local => {
            let r = f - w;
            for j in 0..r {
                for i in j..r {
                    cb(i, j);
                }
            }
        }
        Layout::Grid { pr, pc, nb } => {
            let lo = map.group[child].0;
            let rel = q - lo;
            let my = (rel / pc, rel % pc);
            let nblk = f.div_ceil(nb);
            for bi in 0..nblk {
                for bj in 0..=bi {
                    if (bi % pr, bj % pc) != my {
                        continue;
                    }
                    let m_bi = nb.min(f - bi * nb);
                    let n_bj = nb.min(f - bj * nb);
                    let (r0, c0) = (bi * nb, bj * nb);
                    if r0 + m_bi <= w {
                        continue;
                    }
                    for jc in 0..n_bj {
                        let lj = c0 + jc;
                        if lj < w {
                            continue;
                        }
                        let i0 = if bi == bj { jc } else { 0 };
                        for i in i0..m_bi {
                            let li = r0 + i;
                            if li < w {
                                continue;
                            }
                            cb(li - w, lj - w);
                        }
                    }
                }
            }
        }
    }
}

/// Enumerate a distributed front's Schur entries (`li, lj >= w`) in
/// deterministic (block-sorted, column-major) order. Extend-add receivers
/// expect exactly one message per child rank, so senders always emit a
/// buffer for every destination — empty if this rank computed nothing.
fn for_each_schur_entry(df: &DistFront, w: usize, mut f: impl FnMut(usize, usize, f64)) {
    let nb = df.nb;
    for (&(bi, bj), blk) in &df.blocks {
        let m_bi = df.mrows(bi);
        let n_bj = df.mrows(bj);
        let (r0, c0) = (bi * nb, bj * nb);
        if r0 + m_bi <= w {
            continue; // entirely in the pivot region (li < w)
        }
        for jc in 0..n_bj {
            let lj = c0 + jc;
            if lj < w {
                continue;
            }
            let i0 = if bi == bj { jc } else { 0 };
            for i in i0..m_bi {
                let li = r0 + i;
                if li < w {
                    continue;
                }
                f(li, lj, blk[jc * m_bi + i]);
            }
        }
    }
}

/// Map child rows to parent-front-local indices.
fn parent_local_map(
    sym: &Symbolic,
    parent: usize,
    rows: &[usize],
    pw: usize,
    pc0: usize,
) -> Vec<usize> {
    rows.iter()
        .map(|&r| {
            if r < pc0 + pw {
                debug_assert!(r >= pc0);
                r - pc0
            } else {
                pw + sym.sn_rows[parent]
                    .binary_search(&r)
                    .expect("child row missing from parent structure")
            }
        })
        .collect()
}

/// Drop blocks that contain no pivot column (pure Schur blocks) after the
/// update has been shipped; returns released bytes.
fn release_schur_blocks(df: &mut DistFront) -> usize {
    let w = df.w;
    let nb = df.nb;
    let mut released = 0usize;
    df.blocks.retain(|&(_bi, bj), blk| {
        if bj * nb >= w {
            released += blk.len() * 8;
            false
        } else {
            true
        }
    });
    released
}

/// Indexed triplet buffer used only by the verification gather.
type GatherBuf = (Vec<u32>, Vec<f64>);

/// Gather a distributed factor onto machine rank 0 as an ordinary
/// [`Factor`] (verification and solve-on-root). Returns `Some` on rank 0.
pub fn gather_factor(
    rank: &mut Rank,
    sym: &Arc<Symbolic>,
    map: &Mapping,
    rf: &RankFactor,
    perm: Perm,
) -> Option<Factor> {
    const TAG_GATHER: u64 = front::PHASE_GATHER;
    let me = rank.rank();
    let nsuper = sym.nsuper();
    if me != 0 {
        for s in 0..nsuper {
            if !map.participates(s, me) {
                continue;
            }
            match map.layout[s] {
                Layout::Local => {
                    let panel = &rf.local_panels[&s];
                    rank.send(0, front::tag(s, TAG_GATHER), panel.clone());
                }
                Layout::Grid { nb, .. } => {
                    let df = &rf.dist_blocks[&s];
                    let w = sym.sn_width(s);
                    let mut buf: GatherBuf = Default::default();
                    for (&(bi, bj), blk) in &df.blocks {
                        if bj * nb >= w {
                            continue;
                        }
                        let m_bi = df.mrows(bi);
                        let n_bj = df.mrows(bj);
                        for jc in 0..n_bj.min(w - bj * nb) {
                            let lj = bj * nb + jc;
                            let i0 = if bi == bj { jc } else { 0 };
                            for i in i0..m_bi {
                                let li = bi * nb + i;
                                if li < lj {
                                    continue;
                                }
                                buf.0.push(li as u32);
                                buf.0.push(lj as u32);
                                buf.1.push(blk[jc * m_bi + i]);
                            }
                        }
                    }
                    rank.send(0, front::tag(s, TAG_GATHER), buf);
                }
            }
        }
        return None;
    }
    // Rank 0: assemble every panel straight into the factor slab.
    let mut factor = Factor::allocate(sym, FactorKind::Llt, perm);
    for s in 0..nsuper {
        let f = sym.front_order(s);
        let w = sym.sn_width(s);
        match map.layout[s] {
            Layout::Local => {
                let owner = map.group[s].0;
                if owner == 0 {
                    factor.panel_mut(s).copy_from_slice(&rf.local_panels[&s]);
                } else {
                    let p = rank.recv::<Vec<f64>>(owner, front::tag(s, TAG_GATHER));
                    factor.panel_mut(s).copy_from_slice(&p);
                }
            }
            Layout::Grid { .. } => {
                let (lo, hi) = map.group[s];
                let panel = factor.panel_mut(s);
                for q in lo..hi {
                    let (idx, vals) = if q == 0 {
                        let df = &rf.dist_blocks[&s];
                        let mut buf: GatherBuf = Default::default();
                        let nb = df.nb;
                        for (&(bi, bj), blk) in &df.blocks {
                            if bj * nb >= w {
                                continue;
                            }
                            let m_bi = df.mrows(bi);
                            let n_bj = df.mrows(bj);
                            for jc in 0..n_bj.min(w - bj * nb) {
                                let lj = bj * nb + jc;
                                let i0 = if bi == bj { jc } else { 0 };
                                for i in i0..m_bi {
                                    let li = bi * nb + i;
                                    if li < lj {
                                        continue;
                                    }
                                    buf.0.push(li as u32);
                                    buf.0.push(lj as u32);
                                    buf.1.push(blk[jc * m_bi + i]);
                                }
                            }
                        }
                        buf
                    } else {
                        rank.recv::<GatherBuf>(q, front::tag(s, TAG_GATHER))
                    };
                    for (k, &v) in vals.iter().enumerate() {
                        panel[idx[2 * k + 1] as usize * f + idx[2 * k] as usize] = v;
                    }
                }
            }
        }
    }
    Some(factor)
}

/// Everything a distributed run produces, with per-phase *simulated* times.
pub struct DistOutcome {
    /// The factor gathered to rank 0 (verification / host-side solve).
    pub factor: Factor,
    /// Solution of `A X = B` in the original index space (when `b` given):
    /// `n x nrhs` column-major, matching the right-hand-side block.
    pub x: Option<Vec<f64>>,
    /// Simulated numeric-factorization makespan (seconds).
    pub factor_time_s: f64,
    /// Simulated triangular-solve makespan (seconds).
    pub solve_time_s: f64,
    /// Per-rank statistics snapshotted after the solve (gather traffic for
    /// verification is excluded).
    pub stats: Vec<parfact_mpsim::RankStats>,
    /// The src x dst x tag-class communication matrix, snapshotted with
    /// `stats` (gather excluded). `Some` iff the run recorded it — see
    /// [`run_distributed_prepared_traced`]'s `comm` flag.
    pub comm: Option<parfact_trace::CommMatrixReport>,
    /// Max per-rank factor bytes held at the end.
    pub max_factor_bytes: usize,
    /// Total flops across ranks during factorization.
    pub total_flops: f64,
    /// Per-rank recorded events, virtual timestamps (empty unless the run
    /// was traced — see [`run_distributed_prepared_traced`]). Like `stats`,
    /// the verification gather is excluded.
    pub events: Vec<Vec<SpanEvent>>,
}

impl DistOutcome {
    /// Modelled factorization Gflop/s over the makespan.
    pub fn factor_gflops(&self) -> f64 {
        if self.factor_time_s > 0.0 {
            self.total_flops / self.factor_time_s / 1e9
        } else {
            0.0
        }
    }

    /// Max per-rank peak tracked memory (fronts + factor), bytes.
    pub fn max_mem_peak(&self) -> u64 {
        self.stats.iter().map(|s| s.mem_peak).max().unwrap_or(0)
    }

    /// Per-rank statistics in the shared report schema.
    pub fn rank_reports(&self) -> Vec<parfact_trace::RankReport> {
        self.stats
            .iter()
            .enumerate()
            .map(|(r, s)| s.to_report(r))
            .collect()
    }

    /// Fold the rank statistics into aggregate counters (traffic summed,
    /// memory peak maxed). Per-phase seconds stay zero — the distributed
    /// engine attributes time per rank (see [`DistOutcome::rank_reports`]),
    /// not per phase; `fronts_factored` is set by the caller, which knows
    /// the supernode count.
    pub fn fold_counters(&self) -> parfact_trace::Counters {
        parfact_trace::Counters {
            flops: self.total_flops,
            bytes_sent: self.stats.iter().map(|s| s.bytes_sent).sum(),
            msgs_sent: self.stats.iter().map(|s| s.msgs_sent).sum(),
            mem_peak_bytes: self.max_mem_peak(),
            ..parfact_trace::Counters::default()
        }
    }

    /// The recorded events of every rank, merged and sorted into the
    /// canonical span order.
    pub fn merged_events(&self) -> Vec<SpanEvent> {
        let mut all: Vec<SpanEvent> = self.events.iter().flatten().cloned().collect();
        parfact_trace::sort_spans(&mut all);
        all
    }
}

/// Run ordering + analysis on the host, then factor (and optionally solve)
/// on a simulated `p`-rank machine with the event-driven schedule. The
/// distributed engine is `LLᵀ` only, mirroring the paper's SPD scaling
/// study; a matrix that is not SPD returns
/// [`FactorError::NotPositiveDefinite`] like the host engines.
pub fn run_distributed(
    p: usize,
    model: parfact_mpsim::model::CostModel,
    a: &CscMatrix,
    ordering: parfact_order::Method,
    amalg: &parfact_symbolic::AmalgOpts,
    strategy: crate::mapping::MapStrategy,
    b: Option<&[f64]>,
) -> Result<DistOutcome, FactorError> {
    let (sym, ap, total_perm) = prepare(a, ordering, amalg);
    run_distributed_prepared(p, model, &ap, &sym, &total_perm, strategy, false, b)
}

/// Host-side ordering + symbolic analysis, reusable across rank counts.
pub fn prepare(
    a: &CscMatrix,
    ordering: parfact_order::Method,
    amalg: &parfact_symbolic::AmalgOpts,
) -> (Arc<Symbolic>, CscMatrix, Perm) {
    let fill = parfact_order::order_matrix(a, ordering);
    let af = fill.apply_sym_lower(a);
    let (sym, ap) = parfact_symbolic::analyze(&af, amalg);
    let total_perm = sym.post.compose(&fill);
    (Arc::new(sym), ap, total_perm)
}

/// Factor (and optionally solve) a prepared problem on a simulated
/// `p`-rank machine. See [`run_distributed`]. `sync_schedule` selects the
/// strict-postorder blocking schedule (the EXP-A7 ablation baseline)
/// instead of the event-driven one; factors are bitwise identical either
/// way.
///
/// A rank that hits a numeric error (e.g. a non-SPD pivot) returns it
/// through [`parfact_mpsim::Machine::run_result`]: its peers are unblocked
/// by the simulator and the first error (lowest rank) comes back as `Err`
/// — no panic, no hang.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_prepared(
    p: usize,
    model: parfact_mpsim::model::CostModel,
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    total_perm: &Perm,
    strategy: crate::mapping::MapStrategy,
    sync_schedule: bool,
    b: Option<&[f64]>,
) -> Result<DistOutcome, FactorError> {
    run_distributed_prepared_traced(
        p,
        model,
        ap,
        sym,
        total_perm,
        strategy,
        sync_schedule,
        b,
        1,
        false,
        false,
    )
}

/// [`run_distributed_prepared`] with optional event tracing and batched
/// right-hand sides: `b` is an `n x nrhs` column-major block (`nrhs = 1`
/// recovers the single-vector behavior). When `timeline` is set, every
/// rank records compute spans (attributed to supernodes and phases) plus
/// communication/wait spans with virtual timestamps, returned per rank in
/// [`DistOutcome::events`]; the trace covers the factorization *and* the
/// solve (per-rank solve lanes), excluding only the verification gather.
/// Tracing never touches the virtual clocks, so traced runs stay bitwise
/// identical to untraced ones.
///
/// `comm` additionally records the src x dst x tag-class communication
/// matrix ([`DistOutcome::comm`]). Like span tracing, the recording is
/// pure counter arithmetic on the send path and never reads or writes a
/// virtual clock, so factors and makespans stay bitwise identical with it
/// on or off (pinned by the scalability test suite).
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_prepared_traced(
    p: usize,
    model: parfact_mpsim::model::CostModel,
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    total_perm: &Perm,
    strategy: crate::mapping::MapStrategy,
    sync_schedule: bool,
    b: Option<&[f64]>,
    nrhs: usize,
    timeline: bool,
    comm: bool,
) -> Result<DistOutcome, FactorError> {
    let map = crate::mapping::map_tree(sym, p, strategy);
    assert!(map.validate(sym), "invalid mapping");
    let bp = permuted_rhs(b, sym.n, nrhs, total_perm);
    let mut machine = Machine::new(p, model).trace_events(timeline);
    if comm {
        machine = machine.comm_matrix(&front::COMM_CLASSES, front::comm_class);
    }
    let report = machine.run_result(|rank| -> Result<RankOut, FactorError> {
        let rf = factorize_rank(rank, ap, sym, &map, sync_schedule)?;
        finish_rank(rank, sym, &map, total_perm, rf, bp.as_deref(), nrhs)
    })?;
    assemble_outcome(report.results, report.events)
}

/// Per-rank return value of the distributed programs: factor/solve
/// makespans, statistics, factor bytes, the rank's comm-matrix row (when
/// recording was on), plus rank 0's gathered factor and solution.
struct RankOut {
    t_factor: f64,
    t_solve: f64,
    stats: parfact_mpsim::RankStats,
    fbytes: usize,
    comm: Option<parfact_mpsim::CommRow>,
    factor: Option<Factor>,
    x: Option<Vec<f64>>,
}

/// Apply the total permutation to an `n x nrhs` right-hand-side block.
fn permuted_rhs(b: Option<&[f64]>, n: usize, nrhs: usize, total_perm: &Perm) -> Option<Vec<f64>> {
    b.map(|b| {
        assert_eq!(b.len(), n * nrhs, "rhs block must be n x nrhs");
        let mut bp = vec![0.0f64; n * nrhs];
        for r in 0..nrhs {
            bp[r * n..(r + 1) * n].copy_from_slice(&total_perm.apply_vec(&b[r * n..(r + 1) * n]));
        }
        bp
    })
}

/// Epilogue of a rank's program after its factorization finished: solve
/// (when a right-hand side was given), snapshot statistics, and gather the
/// factor to rank 0.
fn finish_rank(
    rank: &mut Rank,
    sym: &Arc<Symbolic>,
    map: &Mapping,
    total_perm: &Perm,
    rf: RankFactor,
    bp: Option<&[f64]>,
    nrhs: usize,
) -> Result<RankOut, FactorError> {
    let n = sym.n;
    let t_factor = rank.clock();
    // The solve is traced too (per-rank solve lanes): its compute spans
    // carry `Phase::Solve`, which the critical-path profiler filters out —
    // the profile models the factorization's child-before-parent
    // dependencies, which the backward solve traverses in the opposite
    // direction.
    let xp = bp.and_then(|bp| solve::solve_rank(rank, sym, map, &rf, bp, nrhs));
    let t_solve = rank.clock() - t_factor;
    // The verification gather stays out of the trace, mirroring what the
    // stats snapshot excludes. The comm-matrix row is snapshotted at the
    // same point for the same reason, so row sums reconcile with
    // `stats.bytes_sent`.
    rank.set_trace_events(false);
    let stats = rank.stats();
    let comm = rank.comm_row();
    let fbytes = rf.factor_bytes(sym);
    let factor = gather_factor(rank, sym, map, &rf, total_perm.clone());
    let x = xp.map(|xp| {
        let mut x = vec![0.0f64; n * nrhs];
        for r in 0..nrhs {
            x[r * n..(r + 1) * n]
                .copy_from_slice(&total_perm.apply_inv_vec(&xp[r * n..(r + 1) * n]));
        }
        x
    });
    Ok(RankOut {
        t_factor,
        t_solve,
        stats,
        fbytes,
        comm,
        factor,
        x,
    })
}

/// Fold per-rank results into a [`DistOutcome`].
fn assemble_outcome(
    results: Vec<RankOut>,
    events: Vec<Vec<SpanEvent>>,
) -> Result<DistOutcome, FactorError> {
    let factor_time_s = results.iter().fold(0.0f64, |m, r| m.max(r.t_factor));
    let solve_time_s = results.iter().fold(0.0f64, |m, r| m.max(r.t_solve));
    let stats: Vec<parfact_mpsim::RankStats> = results.iter().map(|r| r.stats).collect();
    let max_factor_bytes = results.iter().map(|r| r.fbytes).max().unwrap_or(0);
    let total_flops = stats.iter().map(|s| s.flops).sum();
    // Assemble the comm matrix from the per-rank row snapshots (taken
    // before the verification gather, consistent with `stats`).
    let nranks = results.len();
    let comm = results
        .iter()
        .map(|r| r.comm.as_ref())
        .collect::<Option<Vec<_>>>()
        .map(|rows| {
            let nc = rows.first().map_or(0, |r| r.nclasses);
            let mut m = parfact_trace::CommMatrixReport {
                nranks,
                class_names: front::COMM_CLASSES.iter().map(|s| s.to_string()).collect(),
                bytes: vec![0; nranks * nranks * nc],
                msgs: vec![0; nranks * nranks * nc],
            };
            for (src, row) in rows.iter().enumerate() {
                debug_assert_eq!(row.nclasses, nc);
                let base = src * nranks * nc;
                m.bytes[base..base + row.bytes.len()].copy_from_slice(&row.bytes);
                m.msgs[base..base + row.msgs.len()].copy_from_slice(&row.msgs);
            }
            m
        });
    let mut factor = None;
    let mut x = None;
    for r in results {
        if r.factor.is_some() {
            factor = r.factor;
        }
        if r.x.is_some() {
            x = r.x;
        }
    }
    Ok(DistOutcome {
        factor: factor.ok_or(FactorError::Internal("rank 0 gathered no factor"))?,
        x,
        factor_time_s,
        solve_time_s,
        stats,
        comm,
        max_factor_bytes,
        total_flops,
        events,
    })
}

/// What a fault-injected (and possibly restarted) distributed run reports
/// on top of its [`DistOutcome`].
pub struct FaultRun {
    /// The successful attempt's outcome (factor, solution, per-rank stats).
    pub outcome: DistOutcome,
    /// Injected-fault activity accumulated over every attempt.
    pub counts: FaultCounts,
    /// Restarts performed before the run completed.
    pub restarts: u64,
    /// Sum of every attempt's virtual makespan — the end-to-end cost of the
    /// run *including* the crashed attempts, for recovery-overhead studies.
    pub total_makespan_s: f64,
}

/// Factor (and optionally solve) under a deterministic fault plan, with
/// checkpoint/restart recovery. See [`run_distributed_prepared_traced`] for
/// the fault-free arguments.
///
/// Each attempt runs the whole machine under [`Machine::run_verdict`]:
///
/// - **Completed** — results are assembled exactly like a fault-free run.
/// - A rank returning a numeric error ([`FactorError`]) ends the run with
///   that error immediately: degenerate inputs are never retried.
/// - **RankFailed / TimedOut / Deadlocked** — the machine restarts with the
///   crash faults removed from the plan ([`FaultPlan::without_crashes`];
///   link delay/duplication faults persist). With `checkpoint` set, ranks
///   resume from the [`CheckpointStore`]'s consistent cut instead of from
///   scratch. After `max_restarts` restarts the verdict surfaces as the
///   typed [`FactorError`] — never a hang, never a panic.
///
/// `recv_timeout_s` arms the machine-wide receive deadline; `None` derives
/// a generous one from the cost model when the plan injects faults (a lost
/// message then surfaces as [`FactorError::TimedOut`] with full `(rank,
/// src, tag, waited)` context), and leaves timeouts off otherwise.
///
/// The recovered factor is **bitwise identical** to a fault-free run's —
/// the property the fault-recovery test suite pins down.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_faulty(
    p: usize,
    model: parfact_mpsim::model::CostModel,
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    total_perm: &Perm,
    strategy: crate::mapping::MapStrategy,
    b: Option<&[f64]>,
    nrhs: usize,
    timeline: bool,
    plan: &FaultPlan,
    recv_timeout_s: Option<f64>,
    checkpoint: bool,
    max_restarts: usize,
) -> Result<FaultRun, FactorError> {
    let map = crate::mapping::map_tree(sym, p, strategy);
    assert!(map.validate(sym), "invalid mapping");
    let bp = permuted_rhs(b, sym.n, nrhs, total_perm);
    let store = checkpoint.then(|| CheckpointStore::new(p));
    let timeout = recv_timeout_s.or_else(|| {
        (!plan.is_empty()).then(|| {
            // Generous machine-wide deadline: the whole factorization's
            // flops and a factor's worth of traffic, with the model's 4x
            // safety margin on top. Virtual-time generosity costs nothing
            // physically — a receive whose source provably died times out
            // immediately.
            let flops = sym.factor_flops();
            let bytes = 8.0 * sym.factor_nnz() as f64 * p as f64;
            model.recv_timeout_for(flops, bytes)
        })
    });
    let mut attempt_plan = plan.clone();
    let mut counts = FaultCounts::default();
    let mut restarts = 0u64;
    let mut total_makespan_s = 0.0f64;
    loop {
        let mut machine = Machine::new(p, model)
            .trace_events(timeline)
            .fault_plan(attempt_plan.clone());
        if let Some(t) = timeout {
            machine = machine.recv_timeout(t);
        }
        let vr = machine.run_verdict(|rank| -> Result<RankOut, FactorError> {
            let rf = match &store {
                Some(cs) => factorize_rank_ckpt(rank, ap, sym, &map, cs)?,
                None => factorize_rank(rank, ap, sym, &map, false)?,
            };
            finish_rank(rank, sym, &map, total_perm, rf, bp.as_deref(), nrhs)
        });
        counts.merge(&vr.fault_counts);
        total_makespan_s += vr.makespan_s;
        // A numeric error outranks fault verdicts: an indefinite matrix is
        // a property of the input, not of the machine, and is not retried.
        if let Some(e) = vr
            .results
            .iter()
            .flatten()
            .find_map(|r| r.as_ref().err().cloned())
        {
            return Err(e);
        }
        match vr.verdict {
            RunVerdict::Completed => {
                let results = vr
                    .results
                    .into_iter()
                    .map(|r| r.and_then(Result::ok))
                    .collect::<Option<Vec<RankOut>>>()
                    .ok_or(FactorError::Internal(
                        "completed verdict with a missing rank result",
                    ))?;
                let outcome = assemble_outcome(results, vr.events)?;
                return Ok(FaultRun {
                    outcome,
                    counts,
                    restarts,
                    total_makespan_s,
                });
            }
            verdict => {
                if restarts >= max_restarts as u64 {
                    return Err(verdict_error(verdict));
                }
                restarts += 1;
                // Crash faults fired; keep link faults (delay/dup) live so
                // the retry exercises the same wire conditions.
                attempt_plan = attempt_plan.without_crashes();
                if let Some(cs) = &store {
                    cs.rewind_to_consistent_cut(sym, &map);
                }
            }
        }
    }
}

/// Map a terminal machine verdict onto the factorization error taxonomy.
fn verdict_error(v: RunVerdict) -> FactorError {
    match v {
        RunVerdict::Completed => unreachable!("completed runs do not error"),
        RunVerdict::RankFailed { ranks, detail } => FactorError::RankFailed { ranks, detail },
        RunVerdict::TimedOut {
            rank,
            src,
            tag,
            waited_s,
        } => FactorError::TimedOut {
            rank,
            src,
            tag,
            waited_s,
        },
        RunVerdict::Deadlocked { detail } => FactorError::Deadlock { detail },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::reconstruction_error;
    use crate::mapping::MapStrategy;
    use parfact_mpsim::model::CostModel;
    use parfact_order::Method;
    use parfact_sparse::{gen, ops};
    use parfact_symbolic::AmalgOpts;

    fn seq_reference(a: &CscMatrix, ordering: Method) -> (Factor, CscMatrix) {
        let fill = parfact_order::order_matrix(a, ordering);
        let af = fill.apply_sym_lower(a);
        let (sym, ap) = parfact_symbolic::analyze(&af, &AmalgOpts::default());
        let perm = sym.post.compose(&fill);
        let sym = Arc::new(sym);
        let f = crate::seq::factorize_seq(&ap, &sym, FactorKind::Llt, perm).unwrap();
        (f, ap)
    }

    #[test]
    fn dist_matches_seq_bitwise_across_rank_counts() {
        let a = gen::laplace2d(14, 12, gen::Stencil2d::FivePoint);
        let (fseq, ap) = seq_reference(&a, Method::default());
        for p in [1usize, 2, 3, 4, 6, 8] {
            let out = run_distributed(
                p,
                CostModel::bluegene_p(),
                &a,
                Method::default(),
                &AmalgOpts::default(),
                MapStrategy::default(),
                None,
            )
            .unwrap();
            assert_eq!(
                out.factor.max_abs_diff(&fseq),
                0.0,
                "p={p}: distributed factor must equal sequential bitwise"
            );
            assert!(reconstruction_error(&out.factor, &ap) < 1e-10);
        }
    }

    #[test]
    fn dist_1d_layout_matches_too() {
        let a = gen::laplace3d(4, 4, 4, gen::Stencil3d::SevenPoint);
        let (fseq, _) = seq_reference(&a, Method::default());
        let out = run_distributed(
            4,
            CostModel::bluegene_p(),
            &a,
            Method::default(),
            &AmalgOpts::default(),
            MapStrategy::Proportional {
                use_2d: false,
                nb: parfact_dense::chol::NB,
            },
            None,
        )
        .unwrap();
        assert_eq!(out.factor.max_abs_diff(&fseq), 0.0);
    }

    #[test]
    fn dist_flat_mapping_matches() {
        let a = gen::laplace2d(10, 10, gen::Stencil2d::FivePoint);
        let (fseq, _) = seq_reference(&a, Method::default());
        let out = run_distributed(
            4,
            CostModel::bluegene_p(),
            &a,
            Method::default(),
            &AmalgOpts::default(),
            MapStrategy::Flat {
                use_2d: true,
                nb: parfact_dense::chol::NB,
            },
            None,
        )
        .unwrap();
        assert_eq!(out.factor.max_abs_diff(&fseq), 0.0);
    }

    #[test]
    fn nonstandard_block_sizes_stay_correct() {
        // Only nb == chol::NB matches the sequential factor bitwise; other
        // block sizes reorder panel arithmetic but must still reconstruct.
        let a = gen::laplace2d(12, 11, gen::Stencil2d::FivePoint);
        let (_, ap) = parfact_symbolic::analyze(
            &parfact_order::order_matrix(&a, Method::default()).apply_sym_lower(&a),
            &AmalgOpts::default(),
        );
        for nb in [8usize, 23, 64] {
            let out = run_distributed(
                5,
                CostModel::zero_cost(),
                &a,
                Method::default(),
                &AmalgOpts::default(),
                MapStrategy::Proportional { use_2d: true, nb },
                None,
            )
            .unwrap();
            let err = reconstruction_error(&out.factor, &ap);
            assert!(err < 1e-10, "nb={nb}: reconstruction error {err}");
        }
    }

    #[test]
    fn dist_solve_end_to_end() {
        let a = gen::elasticity3d(3, 3, 2);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| ((i * 3) % 11) as f64 * 0.25 - 1.0).collect();
        let mut b = vec![0.0; n];
        a.sym_spmv(&xstar, &mut b);
        for p in [1usize, 3, 4] {
            let out = run_distributed(
                p,
                CostModel::bluegene_p(),
                &a,
                Method::default(),
                &AmalgOpts::default(),
                MapStrategy::default(),
                Some(&b),
            )
            .unwrap();
            let x = out.x.expect("solution requested");
            assert!(
                ops::sym_residual_inf(&a, &x, &b) < 1e-12,
                "p={p} residual too large"
            );
            assert!(out.solve_time_s > 0.0);
        }
    }

    #[test]
    fn dist_scaling_improves_makespan() {
        // Strong scaling on the model machine: more ranks, less time.
        // (Needs a problem big enough that flops dominate latency; the
        // simulated times are build-profile independent.)
        let a = gen::laplace3d(16, 16, 16, gen::Stencil3d::SevenPoint);
        let t1 = run_distributed(
            1,
            CostModel::bluegene_p(),
            &a,
            Method::default(),
            &AmalgOpts::default(),
            MapStrategy::default(),
            None,
        )
        .unwrap()
        .factor_time_s;
        let t8 = run_distributed(
            8,
            CostModel::bluegene_p(),
            &a,
            Method::default(),
            &AmalgOpts::default(),
            MapStrategy::default(),
            None,
        )
        .unwrap()
        .factor_time_s;
        assert!(
            t8 < t1 / 1.8,
            "8 ranks must beat 1 rank by ~2x: t1={t1:.6} t8={t8:.6}"
        );
    }

    #[test]
    fn dist_memory_per_rank_shrinks() {
        // Needs a problem whose fronts dwarf the block-tile padding, or the
        // per-rank tile overhead hides the distribution savings.
        let a = gen::laplace3d(10, 10, 10, gen::Stencil3d::SevenPoint);
        let run = |p| {
            run_distributed(
                p,
                CostModel::bluegene_p(),
                &a,
                Method::default(),
                &AmalgOpts::default(),
                MapStrategy::default(),
                None,
            )
        };
        let m1 = run(1).unwrap().max_factor_bytes;
        let m8 = run(8).unwrap().max_factor_bytes;
        assert!(m8 < m1, "per-rank factor memory must shrink: {m1} -> {m8}");
    }

    #[test]
    fn dist_returns_err_on_indefinite() {
        let a = gen::indefinite(40, 2);
        let r = run_distributed(
            4,
            CostModel::zero_cost(),
            &a,
            Method::Natural,
            &AmalgOpts::default(),
            MapStrategy::default(),
            None,
        );
        assert!(
            matches!(r, Err(FactorError::NotPositiveDefinite { .. })),
            "indefinite input must surface as Err, not a panic"
        );
    }

    #[test]
    fn traced_run_is_bitwise_identical_and_records_lanes() {
        let a = gen::laplace3d(5, 5, 4, gen::Stencil3d::SevenPoint);
        let (sym, ap, perm) = prepare(&a, Method::default(), &AmalgOpts::default());
        let b = vec![1.0; a.nrows()];
        let run = |timeline| {
            run_distributed_prepared_traced(
                4,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                false,
                Some(&b),
                1,
                timeline,
                timeline,
            )
            .unwrap()
        };
        let plain = run(false);
        assert!(plain.events.iter().all(Vec::is_empty));
        let traced = run(true);
        // Tracing must not perturb the virtual clocks or the numbers.
        assert_eq!(traced.factor.max_abs_diff(&plain.factor), 0.0);
        assert_eq!(traced.factor_time_s, plain.factor_time_s);
        assert_eq!(traced.events.len(), 4);
        assert!(traced.events.iter().all(|ev| !ev.is_empty()));
        let merged = traced.merged_events();
        // Every rank has compute spans attributed to supernodes, and the
        // spans hold the lane invariants exactly (virtual clocks).
        let tl = parfact_trace::Timeline::from_spans(&merged);
        tl.validate(0.0).unwrap();
        for r in 0..4 {
            assert!(
                merged
                    .iter()
                    .any(|e| e.who == r && e.supernode.is_some() && e.dur_s > 0.0),
                "rank {r} recorded no attributed compute span"
            );
        }
        assert!(merged.iter().any(|e| e.phase == Phase::Comm));
        assert!(merged.iter().any(|e| e.phase == Phase::Wait));
        // The solve is traced too: attributed solve-lane spans exist and
        // start after the factorization makespan begins.
        assert!(merged
            .iter()
            .any(|e| e.phase == Phase::Solve && e.supernode.is_some()));
        // Span timestamps stay within factor + solve virtual time (only
        // the verification gather is excluded from the trace).
        let end = merged
            .iter()
            .map(|e| e.start_s + e.dur_s)
            .fold(0.0f64, f64::max);
        assert!(end <= traced.factor_time_s + traced.solve_time_s + 1e-12);
    }

    #[test]
    fn sync_schedule_matches_async_bitwise() {
        let a = gen::laplace3d(6, 5, 4, gen::Stencil3d::SevenPoint);
        let (fseq, _) = seq_reference(&a, Method::default());
        let (sym, ap, perm) = prepare(&a, Method::default(), &AmalgOpts::default());
        for p in [2usize, 4, 7] {
            let run = |sync| {
                run_distributed_prepared(
                    p,
                    CostModel::bluegene_p(),
                    &ap,
                    &sym,
                    &perm,
                    MapStrategy::default(),
                    sync,
                    None,
                )
                .unwrap()
            };
            let sync = run(true);
            let async_ = run(false);
            assert_eq!(
                async_.factor.max_abs_diff(&sync.factor),
                0.0,
                "p={p}: async factor must equal sync-schedule factor bitwise"
            );
            assert_eq!(async_.factor.max_abs_diff(&fseq), 0.0, "p={p}: vs seq");
        }
    }
}
