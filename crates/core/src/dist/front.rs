//! Block-cyclic distributed frontal matrices and their partial Cholesky.
//!
//! A distributed front of order `f` is cut into `nb x nb` blocks; block
//! `(bi, bj)` (lower triangle only) lives on grid position
//! `(bi mod pr, bj mod pc)` of the supernode's `pr x pc` process grid. The
//! partial factorization is the classic right-looking panel algorithm with
//! two broadcast phases per panel (row-wise panel broadcast, column-wise
//! broadcast of the transposed operand) — the ScaLAPACK `pdpotrf` pattern,
//! with `pr == 1` degenerating to the 1-D column layout the paper's method
//! outgrew.
//!
//! Panel boundaries equal the sequential kernel's (`nb == chol::NB` by
//! default) and per-entry accumulation order is preserved, so a distributed
//! factor matches the sequential factor **bitwise**.

use parfact_dense::blas::trsm_right_lt;
use parfact_dense::chol;
use parfact_mpsim::collective::{bcast, ibcast, Group};
use parfact_mpsim::Rank;
use parfact_trace::Phase;
use std::collections::BTreeMap;

use crate::error::FactorError;

// ---------------------------------------------------------------------------
// Message-tag namespace.
//
// Every message in the distributed engine is tagged `tag(s, phase)` where
// `s` is a supernode id and `phase` one of the constants below. The
// invariant that keeps `(src, tag)` matching unambiguous is:
//
//   * phases are unique and `< PHASE_LIMIT` (tags pack as
//     `s * PHASE_LIMIT + phase`), and
//   * within one `(src, dst, s, phase)` stream, messages are consumed in
//     the order they were sent (mpsim queues are FIFO per `(src, tag)`).
//
// All tags — factorization broadcasts, extend-adds, the factor gather and
// the five solve phases — MUST go through [`tag`] so the namespace stays
// collision-free as phases are added; `tag` debug-asserts the bound.
// ---------------------------------------------------------------------------

/// Panel factorization phases (factorize).
pub const PHASE_L11: u64 = 1;
pub const PHASE_ROWCAST: u64 = 2;
pub const PHASE_COLCAST: u64 = 3;
/// Factor gather to rank 0 after factorization.
pub const PHASE_GATHER: u64 = 6;
/// Extend-add contribution of child supernode `s` into its parent.
pub const PHASE_EXTADD: u64 = 7;
/// Triangular-solve phases.
pub const PHASE_FWD_PANEL: u64 = 9;
pub const PHASE_FWD_CONTRIB: u64 = 10;
pub const PHASE_BWD_PANEL: u64 = 11;
pub const PHASE_BWD_XROWS: u64 = 12;
pub const PHASE_GATHER_X: u64 = 13;
/// Exclusive upper bound of the phase sub-namespace.
pub const PHASE_LIMIT: u64 = 16;

/// A front distributed block-cyclically over a process grid.
#[derive(Clone)]
pub struct DistFront {
    /// Supernode id (tag namespace).
    pub s: usize,
    /// Front order and pivot count.
    pub f: usize,
    pub w: usize,
    /// Grid shape, block size, first rank of the group.
    pub pr: usize,
    pub pc: usize,
    pub nb: usize,
    pub lo: usize,
    /// This rank's grid position.
    pub my: (usize, usize),
    /// Owned lower blocks, keyed `(bi, bj)`, column-major `m_bi x n_bj`.
    pub blocks: BTreeMap<(usize, usize), Vec<f64>>,
}

impl DistFront {
    /// Create the (zeroed) owned blocks of this rank, reporting the
    /// allocation to the cost model.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        s: usize,
        f: usize,
        w: usize,
        pr: usize,
        pc: usize,
        nb: usize,
        lo: usize,
        rank: &mut Rank,
    ) -> Self {
        let me = rank.rank();
        debug_assert!(me >= lo && me < lo + pr * pc);
        let rel = me - lo;
        let my = (rel / pc, rel % pc);
        let nblk = f.div_ceil(nb);
        let mut blocks = BTreeMap::new();
        let mut bytes = 0usize;
        for bi in 0..nblk {
            for bj in 0..=bi {
                if (bi % pr, bj % pc) == my {
                    let m = nb.min(f - bi * nb);
                    let n = nb.min(f - bj * nb);
                    blocks.insert((bi, bj), vec![0.0f64; m * n]);
                    bytes += m * n * 8;
                }
            }
        }
        rank.alloc(bytes);
        DistFront {
            s,
            f,
            w,
            pr,
            pc,
            nb,
            lo,
            my,
            blocks,
        }
    }

    /// Number of block rows/cols.
    pub fn nblk(&self) -> usize {
        self.f.div_ceil(self.nb)
    }

    /// Rows in block-row `bi`.
    pub fn mrows(&self, bi: usize) -> usize {
        self.nb.min(self.f - bi * self.nb)
    }

    /// Machine rank at grid position `(gr, gc)`.
    pub fn rank_at(&self, gr: usize, gc: usize) -> usize {
        self.lo + gr * self.pc + gc
    }

    /// Machine rank owning block `(bi, bj)`.
    pub fn owner(&self, bi: usize, bj: usize) -> usize {
        self.rank_at(bi % self.pr, bj % self.pc)
    }

    /// Total bytes currently held in owned blocks.
    pub fn bytes(&self) -> usize {
        self.blocks.values().map(|b| b.len() * 8).sum()
    }

    /// Add `v` into front-local entry `(li, lj)` (must be owned and lower).
    #[inline]
    pub fn add(&mut self, li: usize, lj: usize, v: f64) {
        debug_assert!(li >= lj && li < self.f);
        let (bi, bj) = (li / self.nb, lj / self.nb);
        let m = self.mrows(bi);
        let blk = self
            .blocks
            .get_mut(&(bi, bj))
            .expect("add() to unowned block");
        blk[(lj - bj * self.nb) * m + (li - bi * self.nb)] += v;
    }

    /// True when this rank owns the block containing `(li, lj)`.
    #[inline]
    pub fn owns_entry(&self, li: usize, lj: usize) -> bool {
        let (bi, bj) = (li / self.nb, lj / self.nb);
        (bi % self.pr, bj % self.pc) == self.my
    }

    /// Distributed right-looking partial Cholesky of the leading `w`
    /// columns: per panel, factor the diagonal block, scale the panel,
    /// broadcast the pieces row-wise and the transposed operands
    /// column-wise (binomial trees), then apply the trailing update.
    ///
    /// With `overlap` set, panel `bk`'s drain is deferred by one iteration
    /// (lookahead window of 1): only its own block column is brought
    /// current before panel `bk+1`'s broadcasts post, the rest drains
    /// *after* those broadcasts are in flight, and the broadcasts
    /// themselves forward with [`ibcast`] so their β transfer time hides
    /// under the deferred drain's compute. Under blocking sends lookahead
    /// measured slower (the forwarding ranks sat on the critical path
    /// either way); with nonblocking forwards the freed sender time is
    /// exactly what the drain fills — see DESIGN.md "Communication
    /// overlap".
    ///
    /// Per-entry accumulation order matches the sequential kernel exactly
    /// regardless of `overlap` (each entry still receives panel updates in
    /// ascending panel order), so results are bitwise identical to it.
    ///
    /// `col_base` converts pivot indices into matrix columns for error
    /// reporting. Every rank of the grid must call this.
    pub fn factorize(
        &mut self,
        rank: &mut Rank,
        col_base: usize,
        overlap: bool,
    ) -> Result<(), FactorError> {
        let (nb, pr, pc, w) = (self.nb, self.pr, self.pc, self.w);
        let nblk = self.nblk();
        let npanels = w.div_ceil(nb);
        let t_l11 = tag(self.s, PHASE_L11);
        let t_row = tag(self.s, PHASE_ROWCAST);
        let t_col = tag(self.s, PHASE_COLCAST);
        let cast = |rank: &mut Rank, group: &Group, root: usize, v: Option<Vec<f64>>, t: u64| {
            if overlap {
                ibcast(rank, group, root, v, t)
            } else {
                bcast(rank, group, root, v, t)
            }
        };
        // Binomial-tree communicators along my grid row and column.
        let my_row_group = Group::new((0..pc).map(|gc| self.rank_at(self.my.0, gc)).collect());
        let my_col_group = Group::new((0..pr).map(|gr| self.rank_at(gr, self.my.1)).collect());
        // The not-yet-drained previous panel (lookahead window of 1).
        let mut pending: Option<PanelPieces> = None;
        for bk in 0..npanels {
            let k0 = bk * nb;
            let jb = nb.min(w - k0);
            let (br, bc) = (bk % pr, bk % pc);
            let m_bk = self.mrows(bk);

            // --- A. Bring this panel's block column current. (Eager
            // draining keeps `pending` empty here; with `overlap` this is
            // the first half of draining panel bk-1.) ---
            if let Some(p) = &pending {
                self.apply_panel(p, rank, |bj| bj == bk);
            }

            // --- B1. Diagonal block: factor its leading jb columns, then
            // broadcast L11 down the panel's grid column. ---
            let mut l11: Vec<f64> = Vec::new();
            if self.my == (br, bc) {
                let blk = self.blocks.get_mut(&(bk, bk)).expect("diag block");
                chol::partial_potrf(m_bk, jb, blk, m_bk)
                    .map_err(|e| FactorError::from_dense(e, col_base + k0))?;
                rank.compute_as(flops_partial(m_bk, jb), Phase::Panel, Some(self.s));
                // Compact copy of the jb x jb lower L11.
                l11 = vec![0.0; jb * jb];
                for t in 0..jb {
                    for i in t..jb {
                        l11[t * jb + i] = blk[t * m_bk + i];
                    }
                }
            }
            if self.my.1 == bc && pr > 1 {
                let root = if self.my == (br, bc) { Some(l11) } else { None };
                l11 = cast(rank, &my_col_group, br, root, t_l11);
            }

            // --- B2. Panel scaling: L21 = A21 L11^{-T} on grid column bc. ---
            if self.my.1 == bc {
                for bi in bk + 1..nblk {
                    if bi % pr != self.my.0 {
                        continue;
                    }
                    let m = self.mrows(bi);
                    let blk = self.blocks.get_mut(&(bi, bk)).expect("panel block");
                    trsm_right_lt(m, jb, &l11, jb, blk, m);
                    rank.compute_as((m * jb * jb) as f64, Phase::Panel, Some(self.s));
                }
            }

            // --- B3. Row-wise broadcast of panel pieces (binomial within
            // each grid row): arows[bi - bk] = first jb columns of block
            // (bi, bk), for every block row bi congruent to my grid row. ---
            let mut arows: Vec<Option<Vec<f64>>> = vec![None; nblk - bk];
            for bi in bk..nblk {
                if bi % pr != self.my.0 {
                    continue;
                }
                let piece = if pc == 1 {
                    let m = self.mrows(bi);
                    let blk = self.blocks.get(&(bi, bk)).expect("panel block");
                    blk[..jb * m].to_vec()
                } else {
                    let root = if self.my.1 == bc {
                        let m = self.mrows(bi);
                        let blk = self.blocks.get(&(bi, bk)).expect("panel block");
                        Some(blk[..jb * m].to_vec())
                    } else {
                        None
                    };
                    cast(rank, &my_row_group, bc, root, t_row)
                };
                arows[bi - bk] = Some(piece);
            }

            // --- B4. Column-wise broadcast of transposed operands (binomial
            // within each grid column): bops[bj - bk] = panel piece of block
            // row bj, for grid column bj % pc. ---
            let mut bops: Vec<Option<Vec<f64>>> = vec![None; nblk - bk];
            for bj in bk..nblk {
                let (sr, sc) = (bj % pr, bj % pc);
                if self.my.1 != sc {
                    continue;
                }
                let piece = if pr == 1 {
                    arows[bj - bk].clone().expect("source lacks panel piece")
                } else {
                    let root = if self.my.0 == sr {
                        Some(arows[bj - bk].clone().expect("source lacks panel piece"))
                    } else {
                        None
                    };
                    cast(rank, &my_col_group, sr, root, t_col)
                };
                bops[bj - bk] = Some(piece);
            }

            // --- C. Drain. Without overlap: apply this panel eagerly.
            // With overlap: finish draining panel bk-1 (every column except
            // bk, which step A already brought current) now that panel bk's
            // broadcasts are in flight, and keep panel bk pending — its
            // transfer time hides under this compute. ---
            let current = PanelPieces {
                bk,
                jb,
                arows,
                bops,
            };
            if overlap {
                if let Some(p) = pending.take() {
                    self.apply_panel(&p, rank, |bj| bj != bk);
                }
                pending = Some(current);
            } else {
                self.apply_panel(&current, rank, |_| true);
                pending = None;
            }
        }
        if let Some(p) = pending.take() {
            self.apply_panel(&p, rank, |_| true);
        }
        Ok(())
    }

    /// Apply one panel's trailing update to every owned block whose block
    /// column satisfies `keep` (and is at or right of the panel). The panel
    /// block-column only updates its columns beyond the pivot part; the
    /// diagonal block of the panel was already updated inside its
    /// `partial_potrf`.
    fn apply_panel(&mut self, p: &PanelPieces, rank: &mut Rank, keep: impl Fn(usize) -> bool) {
        let (nb, f) = (self.nb, self.f);
        let bk = p.bk;
        let jb = p.jb;
        let mut flops = 0usize;
        for (&(bi, bj), blk) in self.blocks.iter_mut() {
            if bj < bk || !keep(bj) {
                continue;
            }
            if bi == bk && bj == bk {
                continue; // handled inside the diagonal partial_potrf
            }
            let m_bi = nb.min(f - bi * nb);
            let n_bj = nb.min(f - bj * nb);
            let m_bj = n_bj;
            let jc0 = if bj == bk { jb } else { 0 };
            if jc0 >= n_bj {
                continue;
            }
            let a = p.arows[bi - bk].as_deref().expect("missing A operand");
            let b = p.bops[bj - bk].as_deref().expect("missing B operand");
            for jc in jc0..n_bj {
                // Row start: lower triangle within diagonal blocks.
                let i0 = if bi == bj { jc } else { 0 };
                let col = &mut blk[jc * m_bi..(jc + 1) * m_bi];
                // Per-entry dot over the panel's jb pivots in ascending
                // order, subtracted once — the packed microkernel's
                // accumulation contract (see `parfact_dense::pack`), which
                // keeps distributed results bitwise equal to sequential.
                for i in i0..m_bi {
                    let mut acc = 0.0f64;
                    for t in 0..jb {
                        acc += a[t * m_bi + i] * b[t * m_bj + jc];
                    }
                    col[i] -= acc;
                }
                // Charge per column so diagonal blocks (which only compute
                // their lower triangle) are not overcounted.
                flops += 2 * (m_bi - i0) * jb;
            }
        }
        rank.compute_as(flops as f64, Phase::Gemm, Some(self.s));
    }
}

/// One panel's broadcast pieces, kept alive by the lookahead window.
struct PanelPieces {
    bk: usize,
    jb: usize,
    arows: Vec<Option<Vec<f64>>>,
    bops: Vec<Option<Vec<f64>>>,
}

/// Tag for `(supernode, phase)` — phases within a supernode are disjoint,
/// and supernode ids never repeat across the run. This is the single tag
/// constructor for the whole distributed engine; see the namespace notes
/// at the top of this module.
pub fn tag(s: usize, phase: u64) -> u64 {
    debug_assert!(
        phase < PHASE_LIMIT,
        "tag phase {phase} outside the {PHASE_LIMIT}-wide namespace"
    );
    (s as u64) * PHASE_LIMIT + phase
}

/// Names for the four traffic classes of [`comm_class`], in index order.
/// The simulator's comm matrix uses these as its class axis.
pub const COMM_CLASSES: [&str; 4] = ["extadd", "panel", "solve", "control"];

/// Classify a message tag into a traffic class for the comm matrix:
/// extend-add contributions (0), factorization panel broadcasts (1),
/// triangular-solve traffic (2), and everything else — gathers and other
/// control flow (3). Pure arithmetic on the phase field of the tag, so it
/// is safe to call from the simulator's recording path.
pub fn comm_class(t: u64) -> usize {
    match t % PHASE_LIMIT {
        PHASE_EXTADD => 0,
        PHASE_L11 | PHASE_ROWCAST | PHASE_COLCAST => 1,
        PHASE_FWD_PANEL | PHASE_FWD_CONTRIB | PHASE_BWD_PANEL | PHASE_BWD_XROWS
        | PHASE_GATHER_X => 2,
        _ => 3,
    }
}

/// Flop count of a partial factorization of `npiv` columns in an
/// `m`-order block: `Σ_k (m-k)²`, the classic LAPACK convention that counts
/// multiplies and adds separately (`n³/3` for full dense Cholesky).
pub fn flops_partial(m: usize, npiv: usize) -> f64 {
    let mut fl = 0.0;
    for k in 0..npiv {
        let len = m - k;
        fl += (len * len) as f64;
    }
    fl
}
