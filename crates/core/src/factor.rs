//! The assembled factor and its triangular solves.
//!
//! The solve phase is blocked: every entry point (single vector included)
//! funnels into [`Factor::solve_many_permuted_in_place`], which streams
//! each supernode panel once through the packed `dense` crate's
//! `trsm`/`gemm` kernels over an `n x nrhs` column-major block. The
//! kernels process each column in an order independent of `nrhs`, so the
//! blocked solve is bitwise identical to `nrhs` single-RHS solves.

use crate::error::FactorError;
use parfact_dense::solve as dsolve;
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::perm::Perm;
use parfact_symbolic::Symbolic;
use std::sync::Arc;

/// Which factorization the blocks hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorKind {
    /// `P A Pᵀ = L Lᵀ` (SPD only).
    Llt,
    /// `P A Pᵀ = L D Lᵀ` with unit-lower `L` (symmetric quasi-definite /
    /// diagonally dominant indefinite; no pivoting).
    Ldlt,
}

/// A computed supernodal factor.
///
/// Per supernode `s`, [`Factor::panel`] is the column-major `f x w` panel
/// (`f = front order`, `w = width`): the first `w` rows are the (lower)
/// pivot block, the remaining rows follow `sym.sn_rows[s]`. All panels live
/// in a single contiguous slab (`panels` indexed through `panel_ptr`), so a
/// factorization performs one allocation instead of one per supernode and
/// `refactorize` can overwrite the slab in place.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Symbolic analysis this factor was computed under (shared: the SMP
    /// engine and repeated numeric refactorizations reuse it).
    pub sym: Arc<Symbolic>,
    /// LLᵀ or LDLᵀ.
    pub kind: FactorKind,
    /// Slab of all factor panels, concatenated in supernode order.
    pub panels: Vec<f64>,
    /// Panel `s` occupies `panels[panel_ptr[s]..panel_ptr[s + 1]]`.
    pub panel_ptr: Vec<usize>,
    /// LDLᵀ pivots (length n; empty for LLᵀ).
    pub d: Vec<f64>,
    /// Total permutation (fill-reducing ∘ postorder), `new → old`.
    pub perm: Perm,
}

impl Factor {
    /// Allocate a zeroed factor with the slab layout implied by `sym`.
    /// Engines fill it in via [`Factor::panel_mut`] (and `d` for LDLᵀ).
    pub fn allocate(sym: &Arc<Symbolic>, kind: FactorKind, perm: Perm) -> Factor {
        let nsuper = sym.nsuper();
        let mut panel_ptr = Vec::with_capacity(nsuper + 1);
        panel_ptr.push(0usize);
        let mut total = 0usize;
        for s in 0..nsuper {
            total += sym.front_order(s) * sym.sn_width(s);
            panel_ptr.push(total);
        }
        let d = match kind {
            FactorKind::Llt => Vec::new(),
            FactorKind::Ldlt => vec![0.0; sym.n],
        };
        Factor {
            sym: Arc::clone(sym),
            kind,
            panels: vec![0.0; total],
            panel_ptr,
            d,
            perm,
        }
    }

    /// The `f x w` column-major factor panel of supernode `s`.
    #[inline]
    pub fn panel(&self, s: usize) -> &[f64] {
        &self.panels[self.panel_ptr[s]..self.panel_ptr[s + 1]]
    }

    /// Mutable view of supernode `s`'s panel.
    #[inline]
    pub fn panel_mut(&mut self, s: usize) -> &mut [f64] {
        &mut self.panels[self.panel_ptr[s]..self.panel_ptr[s + 1]]
    }

    /// Nonzeros stored in the factor (padding included).
    pub fn nnz(&self) -> usize {
        self.sym.factor_nnz()
    }

    /// Solve `A x = b` using the factor (applies the permutation, runs the
    /// forward/backward supernodal sweeps, un-permutes).
    ///
    /// **Panics** if `b.len() != n` — kept for ergonomic call sites; use
    /// [`Factor::try_solve`] for a checked variant.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.try_solve(b).expect("Factor::solve")
    }

    /// Checked single-RHS solve: returns
    /// [`FactorError::DimensionMismatch`] instead of panicking on a wrong
    /// `b.len()`.
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, FactorError> {
        self.try_solve_many(b, 1)
    }

    /// Solve in the permuted index space (both sweeps), in place. The
    /// single vector runs through the blocked multi-RHS path with
    /// `nrhs = 1`, so single and batched solves share one code path (and
    /// one floating-point operation order).
    pub fn solve_permuted_in_place(&self, x: &mut [f64]) {
        self.solve_many_permuted_in_place(x, 1);
    }

    /// Solve `A X = B` for multiple right-hand sides stored column-major in
    /// `b` (`n x nrhs`). Sweeps run per supernode across all columns, so the
    /// factor panels are traversed once regardless of `nrhs`.
    ///
    /// **Panics** if `b.len() != n * nrhs`; use [`Factor::try_solve_many`]
    /// for the checked variant.
    pub fn solve_many(&self, b: &[f64], nrhs: usize) -> Vec<f64> {
        self.try_solve_many(b, nrhs).expect("Factor::solve_many")
    }

    /// Checked multi-RHS solve (see [`Factor::solve_many`]).
    pub fn try_solve_many(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>, FactorError> {
        let n = self.sym.n;
        if b.len() != n * nrhs {
            return Err(FactorError::DimensionMismatch {
                expected: n * nrhs,
                got: b.len(),
            });
        }
        let mut x = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            x[r * n..(r + 1) * n].copy_from_slice(&self.perm.apply_vec(&b[r * n..(r + 1) * n]));
        }
        self.solve_many_permuted_in_place(&mut x, nrhs);
        let mut out = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            out[r * n..(r + 1) * n]
                .copy_from_slice(&self.perm.apply_inv_vec(&x[r * n..(r + 1) * n]));
        }
        Ok(out)
    }

    /// Multi-RHS sweeps in the permuted space, blocked: per supernode the
    /// `f x w` panel is streamed once through `trsm` + block-`gemm` applied
    /// to all `nrhs` columns (the BLAS-3 shape of the solve phase). The
    /// block is transposed into an interleaved layout for the sweep so the
    /// kernels can run SIMD across the RHS columns; per column the op
    /// order is fixed and independent of `nrhs`, so a blocked solve is
    /// bitwise equal to per-column solves through this same path.
    pub fn solve_many_permuted_in_place(&self, x: &mut [f64], nrhs: usize) {
        let n = self.sym.n;
        if nrhs == 0 || n == 0 {
            return;
        }
        if nrhs == 1 {
            // A single column is already "interleaved".
            self.sweep_interleaved(x, 1);
            return;
        }
        let mut xi = vec![0.0f64; n * nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                xi[i * nrhs + r] = x[r * n + i];
            }
        }
        self.sweep_interleaved(&mut xi, nrhs);
        for r in 0..nrhs {
            for i in 0..n {
                x[r * n + i] = xi[i * nrhs + r];
            }
        }
    }

    /// The blocked triangular sweep on an interleaved `n x nrhs` block
    /// (`xi[i*nrhs + r]`). The scattered ancestor rows are gathered into a
    /// contiguous `m x nrhs` scratch block around each off-diagonal apply
    /// — whole-row copies in this layout, exact by construction.
    fn sweep_interleaved(&self, xi: &mut [f64], nrhs: usize) {
        let sym = &self.sym;
        let unit = self.kind == FactorKind::Ldlt;
        let nsuper = sym.nsuper();
        let maxm = (0..nsuper)
            .map(|s| sym.front_order(s) - sym.sn_width(s))
            .max()
            .unwrap_or(0);
        let mut scratch = vec![0.0f64; maxm * nrhs];
        // Forward: L Y = B.
        for s in 0..nsuper {
            let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
            let w = c1 - c0;
            let f = sym.front_order(s);
            let blk = self.panel(s);
            dsolve::trsm_ln_rm(w, nrhs, blk, f, &mut xi[c0 * nrhs..c1 * nrhs], unit);
            if f > w {
                let m = f - w;
                let rows = &sym.sn_rows[s];
                let below = &mut scratch[..m * nrhs];
                for (k, &row) in rows.iter().enumerate() {
                    below[k * nrhs..(k + 1) * nrhs]
                        .copy_from_slice(&xi[row * nrhs..(row + 1) * nrhs]);
                }
                dsolve::gemm_block_sub_rm(m, w, nrhs, &blk[w..], f, &xi[c0 * nrhs..], below);
                for (k, &row) in rows.iter().enumerate() {
                    xi[row * nrhs..(row + 1) * nrhs]
                        .copy_from_slice(&below[k * nrhs..(k + 1) * nrhs]);
                }
            }
        }
        // Diagonal scaling for LDLt.
        if unit {
            for (i, &di) in self.d.iter().enumerate() {
                for v in xi[i * nrhs..(i + 1) * nrhs].iter_mut() {
                    *v /= di;
                }
            }
        }
        // Backward: Lᵀ Z = Y.
        for s in (0..nsuper).rev() {
            let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
            let w = c1 - c0;
            let f = sym.front_order(s);
            let blk = self.panel(s);
            if f > w {
                let m = f - w;
                let rows = &sym.sn_rows[s];
                let below = &mut scratch[..m * nrhs];
                for (k, &row) in rows.iter().enumerate() {
                    below[k * nrhs..(k + 1) * nrhs]
                        .copy_from_slice(&xi[row * nrhs..(row + 1) * nrhs]);
                }
                dsolve::gemm_block_t_sub_rm(m, w, nrhs, &blk[w..], f, below, &mut xi[c0 * nrhs..]);
            }
            dsolve::trsm_lt_rm(w, nrhs, blk, f, &mut xi[c0 * nrhs..c1 * nrhs], unit);
        }
    }

    /// Log-determinant of `A` (`2 Σ log L(j,j)` for LLᵀ, `Σ log |d_j|`
    /// plus the sign for LDLᵀ). Returns `(log |det A|, sign)`.
    pub fn log_det(&self) -> (f64, f64) {
        match self.kind {
            FactorKind::Llt => {
                let mut acc = 0.0;
                for s in 0..self.sym.nsuper() {
                    let (c0, c1) = (self.sym.sn_ptr[s], self.sym.sn_ptr[s + 1]);
                    let f = self.sym.front_order(s);
                    for j in 0..c1 - c0 {
                        acc += self.panel(s)[j * f + j].ln();
                    }
                }
                (2.0 * acc, 1.0)
            }
            FactorKind::Ldlt => {
                let mut acc = 0.0;
                let mut sign = 1.0;
                for &dj in &self.d {
                    acc += dj.abs().ln();
                    if dj < 0.0 {
                        sign = -sign;
                    }
                }
                (acc, sign)
            }
        }
    }

    /// Iterative refinement: solve, then apply `iters` correction steps
    /// `x += A⁻¹ (b − A x)`. Returns `(x, final residual ∞-norm)`.
    pub fn solve_refined(&self, a: &CscMatrix, b: &[f64], iters: usize) -> (Vec<f64>, f64) {
        let mut x = self.solve(b);
        for _ in 0..iters {
            let r = parfact_sparse::ops::sym_residual(a, &x, b);
            if parfact_sparse::ops::norm_inf(&r) == 0.0 {
                break;
            }
            let dx = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
        }
        let r = parfact_sparse::ops::sym_residual(a, &x, b);
        (x, parfact_sparse::ops::norm_inf(&r))
    }

    /// Reconstruct the factor as an explicit sparse lower-triangular matrix
    /// in the permuted index space (validation/debug; includes padding
    /// zeros as explicit entries).
    pub fn to_sparse_l(&self) -> CscMatrix {
        let sym = &self.sym;
        let n = sym.n;
        let mut colptr = vec![0usize; n + 1];
        let mut rowind = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for s in 0..sym.nsuper() {
            let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
            let w = c1 - c0;
            let f = sym.front_order(s);
            let blk = self.panel(s);
            for j in 0..w {
                let c = c0 + j;
                // Pivot-block part (rows j..w map to c0+j..c1).
                for i in j..w {
                    rowind.push(c0 + i);
                    vals.push(blk[j * f + i]);
                }
                for (k, &r) in sym.sn_rows[s].iter().enumerate() {
                    rowind.push(r);
                    vals.push(blk[j * f + w + k]);
                }
                colptr[c + 1] = rowind.len();
            }
        }
        CscMatrix::from_parts(n, n, colptr, rowind, vals)
    }

    /// Max `|L(i,j)|` difference against another factor with the identical
    /// symbolic structure (cross-engine equivalence checks).
    pub fn max_abs_diff(&self, other: &Factor) -> f64 {
        assert_eq!(self.sym.sn_ptr, other.sym.sn_ptr);
        assert_eq!(self.panels.len(), other.panels.len());
        let mut m: f64 = 0.0;
        for (x, y) in self.panels.iter().zip(&other.panels) {
            m = m.max((x - y).abs());
        }
        for (x, y) in self.d.iter().zip(&other.d) {
            m = m.max((x - y).abs());
        }
        m
    }
}

/// Validate that a factor reproduces `P A Pᵀ` (test helper used across the
/// workspace): returns the max abs entry of `L Lᵀ − P A Pᵀ` (or the LDLᵀ
/// equivalent) over the lower triangle.
pub fn reconstruction_error(factor: &Factor, ap: &CscMatrix) -> f64 {
    let n = factor.sym.n;
    let l = factor.to_sparse_l();
    // Dense reconstruction — test sizes only.
    assert!(
        n <= 3000,
        "reconstruction_error is a small-matrix test helper"
    );
    let ld = l.to_dense_colmajor();
    let mut rec = vec![0.0; n * n];
    match factor.kind {
        FactorKind::Llt => {
            for j in 0..n {
                for k in 0..=j {
                    let ljk = ld[k * n + j];
                    if ljk == 0.0 {
                        continue;
                    }
                    for i in j..n {
                        rec[j * n + i] += ld[k * n + i] * ljk;
                    }
                }
            }
        }
        FactorKind::Ldlt => {
            for j in 0..n {
                for k in 0..=j {
                    let lik_base = k * n;
                    let ljk = if j == k { 1.0 } else { ld[lik_base + j] };
                    let w = ljk * factor.d[k];
                    if w == 0.0 {
                        continue;
                    }
                    for i in j..n {
                        let lik = if i == k { 1.0 } else { ld[lik_base + i] };
                        rec[j * n + i] += lik * w;
                    }
                }
            }
        }
    }
    let ad = ap.to_dense_colmajor();
    let mut err: f64 = 0.0;
    for j in 0..n {
        for i in j..n {
            err = err.max((rec[j * n + i] - ad[j * n + i]).abs());
        }
    }
    err
}
