//! Error taxonomy of the numeric factorization.

use parfact_dense::DenseError;
use parfact_sparse::SparseError;
use std::fmt;

/// Failure modes of `factorize`/`solve`.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A Cholesky pivot was non-positive: the matrix is not positive
    /// definite. `col` is the column in the *permuted* ordering; use LDLᵀ
    /// for symmetric indefinite systems.
    NotPositiveDefinite { col: usize, value: f64 },
    /// An LDLᵀ pivot vanished (matrix numerically singular on its diagonal).
    ZeroPivot { col: usize },
    /// The input matrix violates the symmetric-lower storage convention.
    BadStructure(SparseError),
    /// The requested engine/option combination is not implemented (e.g.
    /// LDLᵀ on the distributed engine).
    Unsupported(String),
    /// A solve was handed a right-hand-side buffer whose length does not
    /// match the factored system (`expected = n * nrhs`). The checked solve
    /// API returns this; the legacy `solve`/`solve_many` shims panic.
    DimensionMismatch { expected: usize, got: usize },
    /// An engine invariant broke (e.g. the distributed gather produced no
    /// factor on the root rank). Always a bug, never a property of the
    /// input — reported as an error instead of a panic so a long-running
    /// host survives it.
    Internal(&'static str),
    /// One or more simulated ranks died under an injected fault plan and
    /// the run could not (or was not allowed to) recover. `detail` carries
    /// the per-rank diagnostics from the machine verdict.
    RankFailed {
        /// Crashed ranks, ascending.
        ranks: Vec<usize>,
        /// Per-rank diagnostic text.
        detail: String,
    },
    /// A simulated rank's blocking receive exceeded the machine-wide
    /// receive deadline (a lost or delayed message), and restarts were
    /// exhausted. Coordinates identify the unmatched `(src, tag)` receive.
    TimedOut {
        /// The rank whose receive timed out.
        rank: usize,
        /// Source rank it was matching.
        src: usize,
        /// Message tag it was matching.
        tag: u64,
        /// Virtual seconds it waited before giving up.
        waited_s: f64,
    },
    /// The simulated machine deadlocked: every rank finished or blocked
    /// with no matching message in flight and no crashed rank to blame.
    /// Under the shipped schedules this indicates an engine bug; it is
    /// typed (rather than folded into [`FactorError::Internal`]) so fault
    /// drills can distinguish it from injected failures.
    Deadlock {
        /// Per-rank diagnostic text.
        detail: String,
    },
}

impl FactorError {
    /// Lift a dense-kernel error of a front into matrix coordinates.
    pub fn from_dense(e: DenseError, col_base: usize) -> Self {
        match e {
            DenseError::NotPositiveDefinite { index, value } => FactorError::NotPositiveDefinite {
                col: col_base + index,
                value,
            },
            DenseError::ZeroPivot { index } => FactorError::ZeroPivot {
                col: col_base + index,
            },
        }
    }
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { col, value } => write!(
                f,
                "matrix is not positive definite (pivot {col} = {value:e}); try LDLt"
            ),
            FactorError::ZeroPivot { col } => write!(f, "zero pivot at column {col}"),
            FactorError::BadStructure(e) => write!(f, "bad matrix structure: {e}"),
            FactorError::Unsupported(what) => write!(f, "unsupported: {what}"),
            FactorError::DimensionMismatch { expected, got } => write!(
                f,
                "right-hand-side length mismatch: expected {expected} values, got {got}"
            ),
            FactorError::Internal(what) => write!(f, "internal engine invariant broke: {what}"),
            FactorError::RankFailed { ranks, detail } => {
                write!(f, "simulated rank failure (ranks {ranks:?}): {detail}")
            }
            FactorError::TimedOut {
                rank,
                src,
                tag,
                waited_s,
            } => write!(
                f,
                "rank {rank} timed out waiting {waited_s:.6}s for a message from rank {src} (tag {tag})"
            ),
            FactorError::Deadlock { detail } => write!(f, "simulated machine deadlock: {detail}"),
        }
    }
}

impl std::error::Error for FactorError {}

impl From<SparseError> for FactorError {
    fn from(e: SparseError) -> Self {
        FactorError::BadStructure(e)
    }
}
