//! Sequential supernodal multifrontal factorization — the per-node engine
//! and the correctness oracle for the parallel ones.

use crate::error::FactorError;
use crate::factor::{Factor, FactorKind};
use crate::frontal::{assemble_front, extract_update_into, UpdateMatrix};
use crate::workspace::Workspace;
use parfact_dense::chol;
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::perm::Perm;
use parfact_symbolic::Symbolic;
use parfact_trace::{Collector, Phase};
use std::sync::Arc;

/// Factor an already-permuted matrix (the output of
/// [`parfact_symbolic::analyze`]) into a supernodal factor.
///
/// `perm` is the total permutation recorded into the [`Factor`] so `solve`
/// can map user vectors; it does not affect the numerics here.
pub fn factorize_seq(
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    kind: FactorKind,
    perm: Perm,
) -> Result<Factor, FactorError> {
    factorize_seq_traced(ap, sym, kind, perm, &Collector::disabled())
}

/// [`factorize_seq`] with instrumentation recorded into `tr`. With a
/// disabled collector every hook is a single branch, so this *is* the
/// uninstrumented engine.
pub fn factorize_seq_traced(
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    kind: FactorKind,
    perm: Perm,
    tr: &Collector,
) -> Result<Factor, FactorError> {
    let mut factor = Factor::allocate(sym, kind, perm);
    let mut ws = Workspace::new();
    factorize_seq_into(ap, sym, tr, &mut ws, &mut factor)?;
    Ok(factor)
}

/// The in-place sequential engine: overwrite `factor`'s slab (allocated
/// with the same `sym`) using the arenas in `ws`. With a warm workspace
/// the steady state performs **no per-supernode heap allocation** — fronts,
/// scatter maps and update matrices all come from reused buffers.
///
/// On error the panels written so far are left behind; callers that reuse
/// factors across calls (refactorize) must treat a failed factor as
/// invalid.
pub(crate) fn factorize_seq_into(
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    tr: &Collector,
    ws: &mut Workspace,
    factor: &mut Factor,
) -> Result<(), FactorError> {
    debug_assert_eq!(factor.sym.sn_ptr, sym.sn_ptr, "factor/symbolic mismatch");
    let kind = factor.kind;
    let nsuper = sym.nsuper();
    ws.ensure_threads(1);
    ws.slots.clear();
    ws.slots.resize_with(nsuper, || None);
    let Workspace { threads, slots } = ws;
    let wst = &mut threads[0];
    wst.scatter.ensure(sym.n);
    let mut rec = tr.local(0);

    for s in 0..nsuper {
        // Children precede parents (postorder), so their updates are ready.
        wst.children.clear();
        for &c in &sym.tree.children[s] {
            wst.children
                .push(slots[c].take().expect("child update missing"));
        }
        let tick = rec.start();
        let fo = sym.front_order(s);
        wst.note_front(fo * fo);
        let (f, entries) =
            assemble_front(ap, sym, s, &mut wst.scatter, &wst.children, &mut wst.front);
        rec.stop(tick, Phase::ExtendAdd, Some(s));
        rec.add_assembled_entries(entries);
        rec.mem_alloc(f * f * 8);
        for u in &wst.children {
            rec.mem_free(u.data.len() * 8);
        }
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        let w = c1 - c0;
        let tick = rec.start();
        match kind {
            FactorKind::Llt => chol::partial_potrf(f, w, &mut wst.front, f)
                .map_err(|e| FactorError::from_dense(e, c0))?,
            FactorKind::Ldlt => chol::partial_ldlt(f, w, &mut wst.front, f, &mut factor.d[c0..c1])
                .map_err(|e| FactorError::from_dense(e, c0))?,
        }
        rec.stop(tick, Phase::Panel, Some(s));
        rec.add_flops(crate::dist::front::flops_partial(f, w));
        rec.front_done();
        factor.panel_mut(s).copy_from_slice(&wst.front[..f * w]);
        rec.mem_alloc(f * w * 8);
        if f > w {
            let r = f - w;
            let mut data = wst.take_buf(r * r);
            extract_update_into(sym, s, &wst.front, f, &mut data);
            rec.mem_alloc(data.len() * 8);
            slots[s] = Some(UpdateMatrix { src: s, data });
        }
        rec.mem_free(f * f * 8);
        // Children are assembled; recycle their buffers for later fronts.
        while let Some(u) = wst.children.pop() {
            wst.recycle(u.data);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::reconstruction_error;
    use parfact_sparse::{gen, ops};
    use parfact_symbolic::{analyze, AmalgOpts};

    fn pipeline(a: &CscMatrix, kind: FactorKind) -> (Factor, CscMatrix) {
        let (sym, ap) = analyze(a, &AmalgOpts::default());
        let perm = sym.post.clone();
        let sym = Arc::new(sym);
        let f = factorize_seq(&ap, &sym, kind, perm).unwrap();
        (f, ap)
    }

    #[test]
    fn factor_reconstructs_tridiagonal() {
        let a = gen::tridiagonal(12);
        let (f, ap) = pipeline(&a, FactorKind::Llt);
        assert!(reconstruction_error(&f, &ap) < 1e-12);
    }

    #[test]
    fn factor_reconstructs_2d_grid() {
        let a = gen::laplace2d(9, 8, gen::Stencil2d::FivePoint);
        let (f, ap) = pipeline(&a, FactorKind::Llt);
        assert!(reconstruction_error(&f, &ap) < 1e-10);
    }

    #[test]
    fn factor_reconstructs_3d_grid() {
        let a = gen::laplace3d(4, 4, 4, gen::Stencil3d::SevenPoint);
        let (f, ap) = pipeline(&a, FactorKind::Llt);
        assert!(reconstruction_error(&f, &ap) < 1e-10);
    }

    #[test]
    fn factor_reconstructs_random_spd() {
        for seed in 0..4 {
            let a = gen::random_spd(70, 5, seed);
            let (f, ap) = pipeline(&a, FactorKind::Llt);
            assert!(reconstruction_error(&f, &ap) < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn ldlt_reconstructs_spd_and_indefinite() {
        let a = gen::random_spd(50, 4, 3);
        let (f, ap) = pipeline(&a, FactorKind::Ldlt);
        assert!(reconstruction_error(&f, &ap) < 1e-9);
        assert!(f.d.iter().all(|&x| x > 0.0));

        // Indefinite but diagonally dominant: LDLt succeeds, pivots signed.
        let ind = gen::indefinite(40, 8);
        let (fi, api) = pipeline(&ind, FactorKind::Ldlt);
        assert!(reconstruction_error(&fi, &api) < 1e-9);
        assert!(fi.d.iter().any(|&x| x < 0.0));
    }

    #[test]
    fn llt_rejects_indefinite_with_column_info() {
        let ind = gen::indefinite(30, 5);
        let (sym, ap) = analyze(&ind, &AmalgOpts::default());
        let perm = sym.post.clone();
        let sym = Arc::new(sym);
        match factorize_seq(&ap, &sym, FactorKind::Llt, perm) {
            Err(FactorError::NotPositiveDefinite { col, .. }) => assert!(col < 30),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = gen::laplace2d(11, 7, gen::Stencil2d::FivePoint);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = vec![0.0; n];
        a.sym_spmv(&xstar, &mut b);

        // Full pipeline with a fill ordering: permute, analyze, factor.
        let fill = parfact_order::order_matrix(&a, parfact_order::Method::default());
        let af = fill.apply_sym_lower(&a);
        let (sym, ap) = analyze(&af, &AmalgOpts::default());
        let total = sym.post.compose(&fill);
        let sym = Arc::new(sym);
        let f = factorize_seq(&ap, &sym, FactorKind::Llt, total).unwrap();
        let x = f.solve(&b);
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!((xi - xs).abs() < 1e-8);
        }
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_matches_cg_cross_check() {
        let a = gen::elasticity3d(3, 3, 3);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let (f, _) = pipeline(&a, FactorKind::Llt);
        // pipeline() used no fill ordering: perm = postorder only. Solve in
        // original space directly.
        let x = f.solve(&b);
        let (xcg, _) = ops::cg(&a, &b, 1e-12, 4000).expect("cg converges");
        for (xi, xc) in x.iter().zip(&xcg) {
            assert!((xi - xc).abs() < 1e-6);
        }
    }

    #[test]
    fn refined_solve_tightens_residual() {
        let a = gen::random_spd(80, 6, 42);
        let b = vec![1.0; 80];
        let (f, _) = pipeline(&a, FactorKind::Llt);
        let (_, r) = f.solve_refined(&a, &b, 2);
        assert!(r < 1e-10);
    }

    #[test]
    fn singleton_and_diagonal_matrices() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(1, 1);
        coo.push(0, 0, 9.0);
        let a1 = coo.to_csc();
        let (f, ap) = pipeline(&a1, FactorKind::Llt);
        assert!(reconstruction_error(&f, &ap) < 1e-15);
        assert_eq!(f.solve(&[18.0]), vec![2.0]);

        let mut coo = parfact_sparse::coo::CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, (i + 1) as f64);
        }
        let ad = coo.to_csc();
        let (fd, _) = pipeline(&ad, FactorKind::Llt);
        let x = fd.solve(&[1.0, 2.0, 3.0, 4.0]);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_many_matches_repeated_single_solves() {
        let a = gen::laplace2d(9, 9, gen::Stencil2d::FivePoint);
        let n = a.nrows();
        let nrhs = 5;
        let (f, _) = pipeline(&a, FactorKind::Llt);
        let mut b = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                b[r * n + i] = ((i * (r + 2)) % 13) as f64 - 6.0;
            }
        }
        let xm = f.solve_many(&b, nrhs);
        for r in 0..nrhs {
            let x1 = f.solve(&b[r * n..(r + 1) * n]);
            for (a_, b_) in xm[r * n..(r + 1) * n].iter().zip(&x1) {
                assert_eq!(a_.to_bits(), b_.to_bits(), "rhs {r}");
            }
        }
    }

    #[test]
    fn solve_many_ldlt() {
        let a = gen::indefinite(40, 5);
        let n = a.nrows();
        let (f, _) = pipeline(&a, FactorKind::Ldlt);
        let b: Vec<f64> = (0..2 * n).map(|i| (i % 9) as f64 - 4.0).collect();
        let xm = f.solve_many(&b, 2);
        for r in 0..2 {
            let x1 = f.solve(&b[r * n..(r + 1) * n]);
            for (a_, b_) in xm[r * n..(r + 1) * n].iter().zip(&x1) {
                assert!((a_ - b_).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn wide_amalgamation_still_correct() {
        // Heavy padding must not change numerics (padded entries are zeros).
        let a = gen::laplace2d(8, 8, gen::Stencil2d::FivePoint);
        let (sym, ap) = analyze(
            &a,
            &AmalgOpts {
                min_width: 32,
                relax_frac: 0.5,
            },
        );
        let perm = sym.post.clone();
        let sym = Arc::new(sym);
        let f = factorize_seq(&ap, &sym, FactorKind::Llt, perm).unwrap();
        assert!(reconstruction_error(&f, &ap) < 1e-10);
    }
}
