//! Acceptance check: a steady-state sequential `refactorize` performs no
//! per-supernode heap allocation. A counting global allocator measures one
//! warm refactorization; the bound is a small constant (permuting the new
//! values and the trace plumbing allocate O(1) buffers per call), far
//! below the supernode count.
//!
//! Keep this the only test in this file: the allocator counter is global,
//! and a concurrently-running test would pollute the count.

use parfact_core::solver::{Engine, FactorOpts, SparseCholesky};
use parfact_sparse::gen;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: pure pass-through to the System allocator plus an atomic
// counter bump — every layout/pointer contract is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY (all three methods): arguments are forwarded verbatim to
    // `System`, which upholds the GlobalAlloc contract; the counter
    // side-effect never touches the allocation itself.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout the caller handed us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: see the impl-level note — verbatim forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` call.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: see the impl-level note — verbatim forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` come from a matching `alloc` call.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_refactorize_makes_no_per_supernode_allocations() {
    let a = gen::laplace2d(40, 40, gen::Stencil2d::FivePoint);
    let mut chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let nsuper = chol.symbolic().nsuper();
    assert!(nsuper > 100, "problem too small to be meaningful: {nsuper}");

    let mut a2 = a.clone();
    for v in a2.values_mut() {
        *v *= 2.0;
    }
    // Two warm-up refactorizations grow every arena to its steady size.
    chol.refactorize(&a2, Engine::Sequential).unwrap();
    chol.refactorize(&a2, Engine::Sequential).unwrap();
    let growth_before = chol.workspace_growth_events();

    ALLOC_COUNT.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    chol.refactorize(&a2, Engine::Sequential).unwrap();
    COUNTING.store(false, Ordering::SeqCst);
    let count = ALLOC_COUNT.load(Ordering::SeqCst);

    assert_eq!(
        chol.workspace_growth_events(),
        growth_before,
        "warm refactorize grew a workspace buffer"
    );
    // Permuting the new values into the factorization order plus report
    // bookkeeping allocate a handful of buffers per call — but nothing
    // proportional to the number of supernodes.
    assert!(
        count < 64,
        "steady-state refactorize made {count} allocations over {nsuper} supernodes"
    );

    let b = vec![1.0; a.nrows()];
    let x = chol.solve(&b);
    assert!(parfact_sparse::ops::sym_residual_inf(&a2, &x, &b) < 1e-12);
}
