//! Stress and edge-case tests for the machine simulator.

use parfact_mpsim::collective::{allreduce, barrier, Group};
use parfact_mpsim::model::CostModel;
use parfact_mpsim::Machine;

#[test]
fn message_storm_stays_fifo_and_deterministic() {
    // Every rank floods every other rank with tagged bursts; receivers
    // drain in a different order than senders sent. Values must come back
    // exactly, twice in a row (determinism).
    let run = || {
        Machine::new(5, CostModel::bluegene_p()).run(|rank| {
            let p = rank.nranks();
            let me = rank.rank();
            for dst in 0..p {
                if dst == me {
                    continue;
                }
                for k in 0..50u64 {
                    rank.send(dst, 1000 + (me as u64), vec![me as f64, k as f64]);
                }
            }
            let mut checksum = 0.0;
            for src in (0..p).rev() {
                if src == me {
                    continue;
                }
                for k in 0..50u64 {
                    let v: Vec<f64> = rank.recv(src, 1000 + (src as u64));
                    assert_eq!(v[0] as usize, src);
                    assert_eq!(v[1] as u64, k);
                    checksum += v[0] * (k as f64 + 1.0);
                }
            }
            checksum
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    for (x, y) in a.stats.iter().zip(&b.stats) {
        assert_eq!(x.clock_s.to_bits(), y.clock_s.to_bits());
    }
}

#[test]
fn clock_is_compute_plus_comm() {
    let r = Machine::new(3, CostModel::bluegene_p()).run(|rank| {
        let g = Group::world(rank.nranks());
        rank.compute(1e7 * (rank.rank() + 1) as f64);
        barrier(rank, &g, 1);
        allreduce(rank, &g, rank.rank() as f64, 2, |a, b| a + b);
        let s = rank.stats();
        assert!(
            (s.compute_s + s.comm_s - s.clock_s).abs() < 1e-12,
            "clock must decompose: {s:?}"
        );
        s.clock_s
    });
    // All ranks end within one allreduce of each other.
    let max = r.results.iter().cloned().fold(0.0f64, f64::max);
    let min = r.results.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max - min < 1e-3);
}

#[test]
fn zero_byte_messages_cost_alpha_only() {
    let m = CostModel {
        alpha_s: 1.0,
        beta_s_per_byte: 1.0,
        flop_time_s: 0.0,
    };
    let r = Machine::new(2, m).run(|rank| {
        if rank.rank() == 0 {
            rank.send(1, 0, Vec::<f64>::new());
        } else {
            let _: Vec<f64> = rank.recv(0, 0);
        }
        rank.clock()
    });
    assert_eq!(r.results[0], 1.0); // alpha only
    assert_eq!(r.results[1], 1.0);
}

#[test]
#[should_panic(expected = "self-sends")]
fn self_send_is_rejected() {
    Machine::new(2, CostModel::zero_cost()).run(|rank| {
        let me = rank.rank();
        rank.send(me, 0, 1u8);
    });
}

#[test]
fn group_split_degenerate_cases() {
    let g = Group::world(5);
    let one = g.split(1);
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].members(), g.members());
    let five = g.split(5);
    assert!(five.iter().all(|p| p.len() == 1));
}

#[test]
fn group_index_of_nonmember_is_none() {
    let g = Group::new(vec![2, 4, 6]);
    assert_eq!(g.index_of(3), None);
    assert_eq!(g.index_of(4), Some(1));
}

#[test]
fn many_ranks_smoke() {
    // 64 ranks on one host: threads must multiplex fine.
    let r = Machine::new(64, CostModel::bluegene_p()).run(|rank| {
        let g = Group::world(rank.nranks());
        allreduce(rank, &g, 1.0f64, 3, |a, b| a + b)
    });
    assert!(r.results.iter().all(|&v| v == 64.0));
}

#[test]
fn report_aggregates() {
    let r = Machine::new(4, CostModel::bluegene_p()).run(|rank| {
        if rank.rank() == 0 {
            rank.send(1, 9, vec![0u8; 1000]);
        } else if rank.rank() == 1 {
            let _: Vec<u8> = rank.recv(0, 9);
        }
        rank.compute(1000.0);
        rank.alloc(123);
    });
    assert_eq!(r.total_msgs(), 1);
    assert_eq!(r.total_bytes(), 1000);
    assert_eq!(r.total_flops(), 4000.0);
    assert_eq!(r.max_mem_peak(), 123);
    assert!(r.makespan_s > 0.0);
    assert!(r.gflops() > 0.0);
}
