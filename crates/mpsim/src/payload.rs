//! Message payloads.
//!
//! Because all ranks live in one process, messages move as typed Rust
//! values — no serialization. What the cost model needs is the *wire size*,
//! which each payload type reports via [`Payload::nbytes`] (payload bytes
//! only; the per-message envelope is folded into α).

/// A value that can be sent between ranks.
///
/// `Clone` is required so the simulator can deliver a message more than
/// once under an injected duplication fault ([`crate::fault::Fault`]);
/// real payloads are plain data, so the bound costs nothing.
pub trait Payload: Send + Clone + 'static {
    /// Number of bytes this value would occupy on the wire.
    fn nbytes(&self) -> usize;
}

macro_rules! scalar_payload {
    ($($t:ty),*) => {$(
        impl Payload for $t {
            fn nbytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

scalar_payload!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl Payload for () {
    fn nbytes(&self) -> usize {
        0
    }
}

impl<T: Send + 'static + Copy> Payload for Vec<T> {
    fn nbytes(&self) -> usize {
        std::mem::size_of::<T>() * self.len()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1u8.nbytes(), 1);
        assert_eq!(1u64.nbytes(), 8);
        assert_eq!(1.0f64.nbytes(), 8);
        assert_eq!(().nbytes(), 0);
    }

    #[test]
    fn vector_sizes() {
        assert_eq!(vec![0f64; 10].nbytes(), 80);
        assert_eq!(vec![0u32; 3].nbytes(), 12);
        assert_eq!(Vec::<f64>::new().nbytes(), 0);
    }

    #[test]
    fn tuple_sizes() {
        assert_eq!((1u64, vec![0f64; 2]).nbytes(), 24);
        assert_eq!((1u8, 2u8, vec![0u8; 5]).nbytes(), 7);
    }
}
