//! Collective operations over rank *groups*, built from point-to-point
//! messages with binomial-tree algorithms — their cost emerges from the
//! α–β model rather than being special-cased.
//!
//! All collectives operate on a [`Group`]: an ordered subset of machine
//! ranks. The subtree-to-subcube mapping in the factorization constantly
//! works on nested subsets, so groups are first-class here. Every member of
//! the group must call the collective (SPMD discipline); tags are caller-
//! supplied so concurrent collectives on disjoint groups cannot collide.

use crate::payload::Payload;
use crate::Rank;

/// An ordered set of machine ranks acting as a communicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// The whole machine.
    pub fn world(nranks: usize) -> Self {
        Group {
            ranks: (0..nranks).collect(),
        }
    }

    /// An explicit rank list (must be non-empty, duplicates forbidden).
    pub fn new(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty());
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "duplicate ranks in group");
        Group { ranks }
    }

    /// A contiguous range of ranks.
    pub fn range(lo: usize, hi: usize) -> Self {
        assert!(lo < hi);
        Group {
            ranks: (lo..hi).collect(),
        }
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the group has one member.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Machine rank of group member `i`.
    pub fn member(&self, i: usize) -> usize {
        self.ranks[i]
    }

    /// All members.
    pub fn members(&self) -> &[usize] {
        &self.ranks
    }

    /// Index of machine rank `r` in this group, if present.
    pub fn index_of(&self, r: usize) -> Option<usize> {
        self.ranks.iter().position(|&x| x == r)
    }

    /// Split into `k` contiguous sub-groups of near-equal size.
    pub fn split(&self, k: usize) -> Vec<Group> {
        assert!(k >= 1 && k <= self.len());
        let n = self.len();
        let mut out = Vec::with_capacity(k);
        let mut start = 0usize;
        for i in 0..k {
            let len = n / k + usize::from(i < n % k);
            out.push(Group {
                ranks: self.ranks[start..start + len].to_vec(),
            });
            start += len;
        }
        out
    }
}

/// Broadcast `value` from group member `root_idx` to all members.
/// Non-roots pass `None`. Returns the value on every member.
pub fn bcast<T: Payload + Clone>(
    rank: &mut Rank,
    group: &Group,
    root_idx: usize,
    value: Option<T>,
    tag: u64,
) -> T {
    bcast_impl(rank, group, root_idx, value, tag, false)
}

/// Broadcast like [`bcast`] but with nonblocking forwarding
/// ([`Rank::isend`]): each hop occupies the sender for α only and the
/// `bytes·β` transfers pipeline down the tree (charged to
/// `comm_hidden_s`). Message matching, traversal order and values are
/// identical to [`bcast`], so results stay bitwise the same — only the
/// modelled schedule differs.
pub fn ibcast<T: Payload + Clone>(
    rank: &mut Rank,
    group: &Group,
    root_idx: usize,
    value: Option<T>,
    tag: u64,
) -> T {
    bcast_impl(rank, group, root_idx, value, tag, true)
}

fn bcast_impl<T: Payload + Clone>(
    rank: &mut Rank,
    group: &Group,
    root_idx: usize,
    value: Option<T>,
    tag: u64,
    overlap: bool,
) -> T {
    let p = group.len();
    let me = group
        .index_of(rank.rank())
        .expect("caller not in collective group");
    let vr = (me + p - root_idx) % p;
    let mut have: Option<T> = if vr == 0 {
        Some(value.expect("root must supply a value"))
    } else {
        None
    };
    // Receive from the parent (strip the lowest set bit of vr).
    let mut mask = 1usize;
    while mask < p {
        if vr & mask != 0 {
            let src_vr = vr - mask;
            let src = group.member((src_vr + root_idx) % p);
            have = Some(rank.recv::<T>(src, tag));
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    let v = have.expect("bcast internal error: no value at forward phase");
    while mask > 0 {
        if vr & mask == 0 && vr + mask < p {
            let dst = group.member((vr + mask + root_idx) % p);
            if overlap {
                rank.isend(dst, tag, v.clone());
            } else {
                rank.send(dst, tag, v.clone());
            }
        }
        mask >>= 1;
    }
    v
}

/// Reduce element-wise with `combine` onto group member `root_idx`
/// (binomial tree). Returns `Some(result)` on the root, `None` elsewhere.
pub fn reduce<T, F>(
    rank: &mut Rank,
    group: &Group,
    root_idx: usize,
    mut value: T,
    tag: u64,
    mut combine: F,
) -> Option<T>
where
    T: Payload + Clone,
    F: FnMut(T, T) -> T,
{
    let p = group.len();
    let me = group
        .index_of(rank.rank())
        .expect("caller not in collective group");
    let vr = (me + p - root_idx) % p;
    let mut mask = 1usize;
    while mask < p {
        if vr & mask == 0 {
            let peer_vr = vr | mask;
            if peer_vr < p {
                let src = group.member((peer_vr + root_idx) % p);
                let other = rank.recv::<T>(src, tag);
                // Fixed combine order (lower vr on the left): deterministic
                // floating-point results.
                value = combine(value, other);
            }
        } else {
            let dst_vr = vr & !mask;
            let dst = group.member((dst_vr + root_idx) % p);
            rank.send(dst, tag, value.clone());
            return None;
        }
        mask <<= 1;
    }
    Some(value)
}

/// All-reduce: reduce to member 0, then broadcast. Deterministic combine
/// order; every member returns the result.
pub fn allreduce<T, F>(rank: &mut Rank, group: &Group, value: T, tag: u64, combine: F) -> T
where
    T: Payload + Clone,
    F: FnMut(T, T) -> T,
{
    let reduced = reduce(rank, group, 0, value, tag, combine);
    bcast(rank, group, 0, reduced, tag.wrapping_add(1))
}

/// Barrier: zero-byte all-reduce.
pub fn barrier(rank: &mut Rank, group: &Group, tag: u64) {
    allreduce(rank, group, 0u8, tag, |a, _| a);
}

/// Gather each member's vector to the root (concatenated in group order).
/// Returns `Some(vec of per-member payloads)` on the root.
pub fn gather<T: Send + Copy + 'static>(
    rank: &mut Rank,
    group: &Group,
    root_idx: usize,
    value: Vec<T>,
    tag: u64,
) -> Option<Vec<Vec<T>>> {
    let me = group
        .index_of(rank.rank())
        .expect("caller not in collective group");
    if me == root_idx {
        let mut out: Vec<Vec<T>> = Vec::with_capacity(group.len());
        for i in 0..group.len() {
            if i == root_idx {
                out.push(value.clone());
            } else {
                out.push(rank.recv::<Vec<T>>(group.member(i), tag));
            }
        }
        Some(out)
    } else {
        rank.send(group.member(root_idx), tag, value);
        None
    }
}

/// All-gather: every member contributes a vector and receives every
/// member's contribution, ordered by group position. Implemented as a
/// gather to member 0 followed by a broadcast of the concatenation — the
/// simple algorithm whose cost the model exposes honestly.
pub fn allgather<T: Send + Copy + 'static>(
    rank: &mut Rank,
    group: &Group,
    value: Vec<T>,
    tag: u64,
) -> Vec<Vec<T>> {
    let gathered = gather(rank, group, 0, value, tag);
    // Flatten with lengths so a single bcast payload carries everything.
    let packed: Option<(Vec<usize>, Vec<T>)> = gathered.map(|parts| {
        let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let flat: Vec<T> = parts.into_iter().flatten().collect();
        (lens, flat)
    });
    let (lens, flat) = bcast(rank, group, 0, packed, tag.wrapping_add(1));
    let mut out = Vec::with_capacity(lens.len());
    let mut off = 0usize;
    for l in lens {
        out.push(flat[off..off + l].to_vec());
        off += l;
    }
    out
}

/// Personalized all-to-all: `sends[i]` goes to group member `i`; returns
/// the vector received from each member (by group position). `sends` must
/// have one entry per group member; the entry for self is moved to the
/// output directly.
pub fn alltoallv<T: Send + Copy + 'static>(
    rank: &mut Rank,
    group: &Group,
    mut sends: Vec<Vec<T>>,
    tag: u64,
) -> Vec<Vec<T>> {
    let p = group.len();
    assert_eq!(sends.len(), p, "one send buffer per group member");
    let me = group
        .index_of(rank.rank())
        .expect("caller not in collective group");
    // Round r: exchange with peer (me XOR r) when valid — a latency-even
    // schedule for power-of-two groups, correct for any size. To stay
    // deadlock-free with blocking receives, the lower index sends first.
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    out[me] = std::mem::take(&mut sends[me]);
    for peer in 0..p {
        if peer == me {
            continue;
        }
        let peer_rank = group.member(peer);
        if me < peer {
            rank.send(peer_rank, tag, std::mem::take(&mut sends[peer]));
            out[peer] = rank.recv::<Vec<T>>(peer_rank, tag);
        } else {
            out[peer] = rank.recv::<Vec<T>>(peer_rank, tag);
            rank.send(peer_rank, tag, std::mem::take(&mut sends[peer]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use crate::Machine;

    #[test]
    fn group_split_covers_members() {
        let g = Group::world(10);
        let parts = g.split(3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let all: Vec<usize> = parts.iter().flat_map(|p| p.members().to_vec()).collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bcast_reaches_everyone_for_all_sizes_and_roots() {
        for p in 1..=9usize {
            let m = Machine::new(p, CostModel::bluegene_p());
            for root in [0, p / 2, p - 1] {
                let r = m.run(|rank| {
                    let g = Group::world(rank.nranks());
                    let v = if g.index_of(rank.rank()) == Some(root) {
                        Some(vec![root as f64, 2.5])
                    } else {
                        None
                    };
                    bcast(rank, &g, root, v, 100)
                });
                for res in &r.results {
                    assert_eq!(res, &vec![root as f64, 2.5], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_on_subgroup_leaves_others_alone() {
        let m = Machine::new(6, CostModel::zero_cost());
        let r = m.run(|rank| {
            let g = Group::range(2, 5); // ranks 2, 3, 4
            if g.index_of(rank.rank()).is_some() {
                let v = if rank.rank() == 2 { Some(7u64) } else { None };
                bcast(rank, &g, 0, v, 5)
            } else {
                0
            }
        });
        assert_eq!(r.results, vec![0, 0, 7, 7, 7, 0]);
    }

    #[test]
    fn reduce_sums_vectors() {
        for p in 1..=8usize {
            let m = Machine::new(p, CostModel::bluegene_p());
            let r = m.run(|rank| {
                let g = Group::world(rank.nranks());
                let v = vec![rank.rank() as f64; 4];
                reduce(rank, &g, 0, v, 9, |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                })
            });
            let expect: f64 = (0..p).map(|i| i as f64).sum();
            assert_eq!(r.results[0].as_ref().unwrap(), &vec![expect; 4]);
            for other in &r.results[1..] {
                assert!(other.is_none());
            }
        }
    }

    #[test]
    fn allreduce_agrees_everywhere() {
        let m = Machine::new(7, CostModel::bluegene_p());
        let r = m.run(|rank| {
            let g = Group::world(rank.nranks());
            allreduce(rank, &g, rank.rank() as f64, 21, |a, b| a.max(b))
        });
        assert!(r.results.iter().all(|&v| v == 6.0));
    }

    #[test]
    fn allreduce_is_deterministic_in_fp() {
        // Sum of values with wildly different magnitudes: the combine order
        // must be fixed, so repeated runs agree bitwise.
        let run = || {
            Machine::new(8, CostModel::bluegene_p()).run(|rank| {
                let g = Group::world(rank.nranks());
                let x = 10f64.powi(rank.rank() as i32 * 2) * 1.234567;
                allreduce(rank, &g, x, 3, |a, b| a + b)
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 1.0,
        };
        let r = Machine::new(4, m).run(|rank| {
            // Rank 3 computes for 100 s; everyone then barriers.
            if rank.rank() == 3 {
                rank.compute(100.0);
            }
            let g = Group::world(rank.nranks());
            barrier(rank, &g, 40);
            rank.clock()
        });
        // After the barrier no clock can be below the slow rank's 100 s.
        for &c in &r.results {
            assert!(c >= 100.0, "clock {c}");
        }
    }

    #[test]
    fn gather_concatenates_in_group_order() {
        let m = Machine::new(4, CostModel::zero_cost());
        let r = m.run(|rank| {
            let g = Group::world(rank.nranks());
            gather(rank, &g, 0, vec![rank.rank() as u64; rank.rank() + 1], 11)
        });
        let got = r.results[0].as_ref().unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v, &vec![i as u64; i + 1]);
        }
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        for p in 1..=6usize {
            let m = Machine::new(p, CostModel::bluegene_p());
            let r = m.run(|rank| {
                let g = Group::world(rank.nranks());
                allgather(rank, &g, vec![rank.rank() as u64; rank.rank() + 1], 30)
            });
            for res in &r.results {
                assert_eq!(res.len(), p);
                for (i, part) in res.iter().enumerate() {
                    assert_eq!(part, &vec![i as u64; i + 1]);
                }
            }
        }
    }

    #[test]
    fn alltoallv_delivers_personalized_buffers() {
        for p in 1..=6usize {
            let m = Machine::new(p, CostModel::bluegene_p());
            let r = m.run(|rank| {
                let g = Group::world(rank.nranks());
                let me = rank.rank();
                // Send to each peer a vector encoding (me, peer).
                let sends: Vec<Vec<u64>> = (0..p)
                    .map(|peer| vec![(me * 100 + peer) as u64; peer + 1])
                    .collect();
                alltoallv(rank, &g, sends, 31)
            });
            for (me, res) in r.results.iter().enumerate() {
                for (src, part) in res.iter().enumerate() {
                    assert_eq!(part, &vec![(src * 100 + me) as u64; me + 1]);
                }
            }
        }
    }

    #[test]
    fn alltoallv_on_subgroup() {
        let m = Machine::new(5, CostModel::zero_cost());
        let r = m.run(|rank| {
            let g = Group::new(vec![1, 3, 4]);
            if let Some(me) = g.index_of(rank.rank()) {
                let sends: Vec<Vec<u64>> =
                    (0..3).map(|peer| vec![(me * 10 + peer) as u64]).collect();
                let got = alltoallv(rank, &g, sends, 9);
                got.iter().map(|v| v[0]).collect::<Vec<_>>()
            } else {
                Vec::new()
            }
        });
        assert_eq!(r.results[3], vec![1, 11, 21]); // member index 1 receives x1 from each
        assert!(r.results[0].is_empty());
    }

    #[test]
    fn ibcast_matches_bcast_values_and_pipelines_transfers() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 1.0,
            flop_time_s: 0.0,
        };
        let payload = vec![1.25f64; 64]; // 512 bytes: bandwidth dominated
        let run = |overlap: bool| {
            let payload = payload.clone();
            Machine::new(8, m).run(move |rank| {
                let g = Group::world(rank.nranks());
                let v = if rank.rank() == 0 {
                    Some(payload.clone())
                } else {
                    None
                };
                if overlap {
                    ibcast(rank, &g, 0, v, 2)
                } else {
                    bcast(rank, &g, 0, v, 2)
                }
            })
        };
        let blocking = run(false);
        let pipelined = run(true);
        for (a, b) in blocking.results.iter().zip(&pipelined.results) {
            assert_eq!(a, b, "ibcast must deliver identical values");
        }
        // The store-and-forward critical path (a chain of full transfers)
        // is the same, so the bare-broadcast makespan cannot get worse...
        assert!(pipelined.makespan_s <= blocking.makespan_s + 1e-12);
        // ...but isend frees each sender after α per child instead of a
        // full transfer per child: the root is available for compute almost
        // immediately (3 α's vs 3 serialized transfers). That freed time is
        // where overlap with computation comes from.
        assert!(
            pipelined.stats[0].clock_s < 0.1 * blocking.stats[0].clock_s,
            "root clock {} vs {}",
            pipelined.stats[0].clock_s,
            blocking.stats[0].clock_s
        );
        assert!(pipelined.stats.iter().any(|s| s.comm_hidden_s > 0.0));
    }

    #[test]
    fn bcast_cost_scales_logarithmically() {
        // With pipelining-free binomial trees, bcast time ~ ceil(log2 p)
        // sequential hops for small messages.
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 0.0,
        };
        let time_for = |p: usize| {
            Machine::new(p, m)
                .run(|rank| {
                    let g = Group::world(rank.nranks());
                    let v = if rank.rank() == 0 { Some(1u8) } else { None };
                    bcast(rank, &g, 0, v, 1);
                })
                .makespan_s
        };
        // Root's sends serialize: p=2 -> 1; p=8 -> root sends 3 messages and
        // the last leaf finishes after its chain, <= log2(p)+2.
        assert!(time_for(2) <= 1.0 + 1e-9);
        assert!(time_for(8) <= 5.0 + 1e-9);
        assert!(time_for(64) <= 12.0 + 1e-9);
        assert!(time_for(64) >= 6.0 - 1e-9);
    }
}
