//! Declarative, deterministic fault plans.
//!
//! A [`FaultPlan`] is a schedule of faults keyed to *virtual* machine state
//! — a rank's virtual clock, its send count, or a (src, dst) link — never
//! to host-thread timing. Applying the same plan to the same program on the
//! same [`crate::model::CostModel`] therefore reproduces the same crashes,
//! delays and duplications bit-for-bit, which is what makes fault-injection
//! runs debuggable and lets recovery tests assert exact outcomes.
//!
//! Plans are built programmatically or parsed from the compact spec grammar
//! used by the CLI `--inject` flag:
//!
//! ```text
//! crash:<rank>@t=<secs>       rank crashes at virtual time <secs>
//! crash:<rank>@send=<k>       rank crashes on its <k>-th send (1-based)
//! delay:<src>-<dst>:<alphas>  every src->dst message is delayed by <alphas>·α
//! dup:<src>-<dst>             every src->dst message is delivered twice
//! ```
//!
//! Multiple faults are comma-separated: `crash:1@t=0.02,delay:0-3:500`.

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Rank `rank` stops executing at the first operation boundary at which
    /// its virtual clock has reached `at_s` seconds.
    CrashAt { rank: usize, at_s: f64 },
    /// Rank `rank` stops executing immediately before performing its
    /// `nth` send (1-based over `send` + `isend`).
    CrashOnSend { rank: usize, nth: u64 },
    /// Every message on the `src -> dst` link arrives `alphas`·α seconds
    /// later than the cost model says (an in-network delay: the sender's
    /// clock and occupancy are unchanged).
    DelayLink { src: usize, dst: usize, alphas: f64 },
    /// Every message on the `src -> dst` link is delivered twice (same
    /// arrival time; the receiver sees two queue entries).
    DuplicateLink { src: usize, dst: usize },
}

/// A declarative schedule of [`Fault`]s applied by the machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The faults, in the order given (order is irrelevant to semantics).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Add a [`Fault::CrashAt`].
    pub fn crash_at(mut self, rank: usize, at_s: f64) -> Self {
        self.faults.push(Fault::CrashAt { rank, at_s });
        self
    }

    /// Add a [`Fault::CrashOnSend`].
    pub fn crash_on_send(mut self, rank: usize, nth: u64) -> Self {
        self.faults.push(Fault::CrashOnSend { rank, nth });
        self
    }

    /// Add a [`Fault::DelayLink`].
    pub fn delay_link(mut self, src: usize, dst: usize, alphas: f64) -> Self {
        self.faults.push(Fault::DelayLink { src, dst, alphas });
        self
    }

    /// Add a [`Fault::DuplicateLink`].
    pub fn duplicate_link(mut self, src: usize, dst: usize) -> Self {
        self.faults.push(Fault::DuplicateLink { src, dst });
        self
    }

    /// Does the plan contain any crash fault?
    pub fn has_crashes(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::CrashAt { .. } | Fault::CrashOnSend { .. }))
    }

    /// The same plan with every crash removed (link faults kept). Recovery
    /// drivers re-run with this so the restarted attempt survives while
    /// still experiencing the injected network conditions.
    pub fn without_crashes(&self) -> Self {
        FaultPlan {
            faults: self
                .faults
                .iter()
                .filter(|f| !matches!(f, Fault::CrashAt { .. } | Fault::CrashOnSend { .. }))
                .cloned()
                .collect(),
        }
    }

    /// Parse the `--inject` spec grammar (see module docs).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            plan.faults.push(parse_fault(part)?);
        }
        Ok(plan)
    }
}

fn parse_fault(part: &str) -> Result<Fault, String> {
    let bad = |why: &str| format!("bad fault spec '{part}': {why}");
    if let Some(rest) = part.strip_prefix("crash:") {
        let (rank, cond) = rest
            .split_once('@')
            .ok_or_else(|| bad("expected crash:<rank>@t=<secs> or crash:<rank>@send=<k>"))?;
        let rank: usize = rank.parse().map_err(|_| bad("rank must be an integer"))?;
        if let Some(t) = cond.strip_prefix("t=") {
            let at_s: f64 = t.parse().map_err(|_| bad("t= needs seconds"))?;
            if !at_s.is_finite() || at_s < 0.0 {
                return Err(bad("t= must be finite and non-negative"));
            }
            Ok(Fault::CrashAt { rank, at_s })
        } else if let Some(k) = cond.strip_prefix("send=") {
            let nth: u64 = k.parse().map_err(|_| bad("send= needs an integer"))?;
            if nth == 0 {
                return Err(bad("send= is 1-based; 0 never fires"));
            }
            Ok(Fault::CrashOnSend { rank, nth })
        } else {
            Err(bad("condition must be t=<secs> or send=<k>"))
        }
    } else if let Some(rest) = part.strip_prefix("delay:") {
        let (link, alphas) = rest
            .split_once(':')
            .ok_or_else(|| bad("expected delay:<src>-<dst>:<alphas>"))?;
        let (src, dst) = parse_link(link).ok_or_else(|| bad("link must be <src>-<dst>"))?;
        let alphas: f64 = alphas
            .parse()
            .map_err(|_| bad("delay factor must be a number"))?;
        if !alphas.is_finite() || alphas < 0.0 {
            return Err(bad("delay factor must be finite and non-negative"));
        }
        Ok(Fault::DelayLink { src, dst, alphas })
    } else if let Some(link) = part.strip_prefix("dup:") {
        let (src, dst) = parse_link(link).ok_or_else(|| bad("link must be <src>-<dst>"))?;
        Ok(Fault::DuplicateLink { src, dst })
    } else {
        Err(bad("unknown fault kind (crash: | delay: | dup:)"))
    }
}

fn parse_link(s: &str) -> Option<(usize, usize)> {
    let (a, b) = s.split_once('-')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

/// Per-run totals of injected-fault activity, returned in run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Ranks that crashed under the plan.
    pub crashes: u64,
    /// Messages delayed by a [`Fault::DelayLink`].
    pub delayed_msgs: u64,
    /// Extra copies posted by a [`Fault::DuplicateLink`].
    pub duplicated_msgs: u64,
    /// Receives that hit a deadline (typed timeouts and timeout aborts).
    pub timeouts: u64,
}

impl FaultCounts {
    /// True when nothing fired.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounts::default()
    }

    /// Accumulate another run's tallies (restart drivers sum attempts).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.crashes += other.crashes;
        self.delayed_msgs += other.delayed_msgs;
        self.duplicated_msgs += other.duplicated_msgs;
        self.timeouts += other.timeouts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_each_kind() {
        let p = FaultPlan::parse("crash:1@t=0.25,crash:2@send=17,delay:0-3:500,dup:4-0").unwrap();
        assert_eq!(
            p.faults,
            vec![
                Fault::CrashAt {
                    rank: 1,
                    at_s: 0.25
                },
                Fault::CrashOnSend { rank: 2, nth: 17 },
                Fault::DelayLink {
                    src: 0,
                    dst: 3,
                    alphas: 500.0
                },
                Fault::DuplicateLink { src: 4, dst: 0 },
            ]
        );
        assert!(p.has_crashes());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "crash:1",
            "crash:x@t=1",
            "crash:1@t=abc",
            "crash:1@t=-1",
            "crash:1@send=0",
            "crash:1@at=3",
            "delay:0-1",
            "delay:01:5",
            "delay:0-1:nan",
            "dup:5",
            "lag:0-1:2",
        ] {
            assert!(
                FaultPlan::parse(bad).is_err(),
                "spec '{bad}' must be rejected"
            );
        }
    }

    #[test]
    fn empty_and_whitespace_specs_are_empty_plans() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
    }

    #[test]
    fn without_crashes_keeps_link_faults() {
        let p = FaultPlan::parse("crash:1@t=0.1,delay:0-2:10,dup:1-2,crash:0@send=3").unwrap();
        let r = p.without_crashes();
        assert!(!r.has_crashes());
        assert_eq!(r.faults.len(), 2);
        assert!(matches!(r.faults[0], Fault::DelayLink { .. }));
        assert!(matches!(r.faults[1], Fault::DuplicateLink { .. }));
    }
}
