//! The α–β–γ machine cost model.
//!
//! - `α` — per-message latency/overhead (seconds);
//! - `β` — inverse bandwidth (seconds per payload byte);
//! - `γ` — seconds per floating-point operation.
//!
//! A point-to-point message of `m` bytes occupies the sender for
//! `α + m·β` and is available at the receiver at that moment; computation
//! advances the local clock by `flops · γ`. Collectives are *not* costed
//! specially — they are built from point-to-point messages, so their cost
//! emerges from the model, exactly as it does on real interconnects.

/// Machine timing constants. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency, seconds.
    pub alpha_s: f64,
    /// Seconds per payload byte (1 / bandwidth).
    pub beta_s_per_byte: f64,
    /// Seconds per floating-point operation (1 / flop rate).
    pub flop_time_s: f64,
}

impl CostModel {
    /// Blue Gene/P-class per-core constants: ~3 µs MPI latency,
    /// ~375 MB/s per-link effective bandwidth, 3.4 Gflop/s peak per core.
    /// (The SC'09 testbed generation; absolute values are configurable and
    /// EXP-A3 sweeps them.)
    pub fn bluegene_p() -> Self {
        CostModel {
            alpha_s: 3.0e-6,
            beta_s_per_byte: 1.0 / 375.0e6,
            flop_time_s: 1.0 / 3.4e9,
        }
    }

    /// A modern commodity-cluster profile: ~1.5 µs latency, ~12 GB/s
    /// effective per-rank bandwidth, ~50 Gflop/s per rank. Per *message*
    /// this machine is far more latency-bound than Blue Gene/P (compute got
    /// ~15x faster, latency only ~2x better), which is why message-count
    /// discipline matters even more today.
    pub fn modern_cluster() -> Self {
        CostModel {
            alpha_s: 1.5e-6,
            beta_s_per_byte: 1.0 / 12.0e9,
            flop_time_s: 1.0 / 50.0e9,
        }
    }

    /// Free communication and computation — semantics tests only.
    pub fn zero_cost() -> Self {
        CostModel {
            alpha_s: 0.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 0.0,
        }
    }

    /// Time to send one `bytes`-sized message.
    pub fn msg_time(&self, bytes: usize) -> f64 {
        self.alpha_s + bytes as f64 * self.beta_s_per_byte
    }

    /// Machine balance: flops one could execute in the time one byte takes
    /// to transfer. Higher means communication is relatively costlier.
    pub fn flops_per_byte(&self) -> f64 {
        self.beta_s_per_byte / self.flop_time_s
    }

    /// Derive a receive deadline that dominates every legitimate wait in a
    /// run bounded by `horizon_flops` floating-point operations and
    /// `horizon_bytes` payload bytes: a blocked rank can legitimately wait
    /// while its peers compute and transfer the whole remaining schedule,
    /// so the deadline is that worst case (plus a latency allowance) with a
    /// 4x safety factor. Anything later is a lost or pathologically delayed
    /// message and should surface as a typed timeout instead of a hang.
    pub fn recv_timeout_for(&self, horizon_flops: f64, horizon_bytes: f64) -> f64 {
        let span = horizon_flops * self.flop_time_s
            + horizon_bytes * self.beta_s_per_byte
            + 1e4 * self.alpha_s;
        4.0 * span.max(self.alpha_s.max(1e-9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for m in [CostModel::bluegene_p(), CostModel::modern_cluster()] {
            assert!(m.alpha_s > 0.0);
            assert!(m.beta_s_per_byte > 0.0);
            assert!(m.flop_time_s > 0.0);
            // Latency dominates tiny messages; bandwidth dominates big ones.
            assert!(m.msg_time(1) < 2.0 * m.alpha_s);
            assert!(m.msg_time(100 << 20) > 100.0 * m.alpha_s);
        }
    }

    #[test]
    fn modern_cluster_is_more_latency_bound() {
        let bg = CostModel::bluegene_p();
        let mc = CostModel::modern_cluster();
        // Flops wasted per message latency.
        let waste = |m: &CostModel| m.alpha_s / m.flop_time_s;
        assert!(waste(&mc) > waste(&bg));
        // But per byte, Blue Gene's slow cores make bandwidth relatively
        // cheaper on the modern machine.
        assert!(mc.flops_per_byte() < bg.flops_per_byte());
    }

    #[test]
    fn msg_time_formula() {
        let m = CostModel {
            alpha_s: 2.0,
            beta_s_per_byte: 0.25,
            flop_time_s: 1.0,
        };
        assert_eq!(m.msg_time(8), 4.0);
    }
}
