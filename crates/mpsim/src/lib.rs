//! A deterministic message-passing machine simulator.
//!
//! This crate stands in for MPI on a massively parallel machine (the SC'09
//! testbed was a Blue Gene/P-class system): each *rank* runs as a real OS
//! thread executing the real distributed algorithm and exchanging real
//! data, while a per-rank **virtual clock** advances according to an α–β
//! communication model and a per-flop compute rate ([`model::CostModel`]).
//!
//! What is real: every byte of payload, the algorithm's control flow, its
//! message pattern, and all numeric results (bit-for-bit deterministic —
//! receives are matched by `(source, tag)`, never by arrival order).
//! What is modelled: *time*. The simulated makespan is derived from the
//! same flop/byte/message counts that determine wall-clock time on real
//! hardware, which is what the scaling experiments measure.
//!
//! ```
//! use parfact_mpsim::{Machine, model::CostModel};
//!
//! let report = Machine::new(4, CostModel::bluegene_p()).run(|rank| {
//!     // SPMD program: ring-pass a token.
//!     let p = rank.nranks();
//!     let next = (rank.rank() + 1) % p;
//!     let prev = (rank.rank() + p - 1) % p;
//!     rank.send(next, 7, rank.rank() as u64);
//!     let token: u64 = rank.recv(prev, 7);
//!     token
//! });
//! assert_eq!(report.results, vec![3, 0, 1, 2]);
//! assert!(report.makespan_s > 0.0);
//! ```

pub mod collective;
pub mod model;
pub mod payload;

use model::CostModel;
use parking_lot::{Condvar, Mutex};
use payload::Payload;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A message in flight.
struct Msg {
    data: Box<dyn Any + Send>,
    /// Virtual time at which the message is fully available at the receiver.
    arrival: f64,
    #[allow(dead_code)]
    bytes: usize,
}

#[derive(Default)]
struct Mailbox {
    queues: Mutex<HashMap<(usize, u64), std::collections::VecDeque<Msg>>>,
    signal: Condvar,
}

struct Shared {
    boxes: Vec<Mailbox>,
    failed: AtomicBool,
    model: CostModel,
}

/// Per-rank execution statistics (virtual time and counters).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Final virtual clock (seconds).
    pub clock_s: f64,
    /// Virtual seconds spent computing.
    pub compute_s: f64,
    /// Virtual seconds spent in communication (send occupancy + recv waits).
    pub comm_s: f64,
    /// Floating-point operations executed (as reported via `compute`).
    pub flops: f64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Peak tracked memory (bytes) — fronts/factors report via `alloc`/`free`.
    pub mem_peak: u64,
}

impl RankStats {
    /// Fold this rank's statistics into the shared report schema
    /// ([`parfact_trace::RankReport`]) used by every engine's
    /// `FactorReport`.
    pub fn to_report(&self, rank: usize) -> parfact_trace::RankReport {
        parfact_trace::RankReport {
            rank,
            clock_s: self.clock_s,
            compute_s: self.compute_s,
            comm_s: self.comm_s,
            flops: self.flops,
            bytes_sent: self.bytes_sent,
            msgs_sent: self.msgs_sent,
            mem_peak_bytes: self.mem_peak,
        }
    }
}

/// Handle a rank's program uses to talk to the machine.
pub struct Rank {
    rank: usize,
    nranks: usize,
    shared: Arc<Shared>,
    clock: f64,
    compute_s: f64,
    comm_s: f64,
    flops: f64,
    bytes_sent: u64,
    msgs_sent: u64,
    mem_cur: u64,
    mem_peak: u64,
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The machine's cost model.
    pub fn model(&self) -> &CostModel {
        &self.shared.model
    }

    /// Advance the virtual clock by the cost of `flops` floating-point
    /// operations. Call this next to the real computation it accounts for.
    pub fn compute(&mut self, flops: f64) {
        let dt = flops * self.shared.model.flop_time_s;
        self.clock += dt;
        self.compute_s += dt;
        self.flops += flops;
    }

    /// Advance the virtual clock by an explicit amount of seconds (e.g.
    /// memory-bound phases accounted by bytes / bandwidth).
    pub fn advance(&mut self, seconds: f64) {
        self.clock += seconds;
        self.compute_s += seconds;
    }

    /// Report a tracked allocation (fronts, factor blocks).
    pub fn alloc(&mut self, bytes: usize) {
        self.mem_cur += bytes as u64;
        self.mem_peak = self.mem_peak.max(self.mem_cur);
    }

    /// Report a tracked deallocation.
    pub fn free(&mut self, bytes: usize) {
        self.mem_cur = self.mem_cur.saturating_sub(bytes as u64);
    }

    /// Send `payload` to rank `dst` with `tag`. The sender is occupied for
    /// `α + bytes·β` virtual seconds (store-and-forward injection); the
    /// message becomes available to the receiver at the sender's clock after
    /// injection.
    pub fn send<T: Payload>(&mut self, dst: usize, tag: u64, payload: T) {
        assert!(dst < self.nranks, "send to rank {dst} of {}", self.nranks);
        assert_ne!(dst, self.rank, "self-sends are not modelled; restructure");
        let bytes = payload.nbytes();
        let m = &self.shared.model;
        let dt = m.alpha_s + bytes as f64 * m.beta_s_per_byte;
        self.clock += dt;
        self.comm_s += dt;
        self.bytes_sent += bytes as u64;
        self.msgs_sent += 1;
        let msg = Msg {
            data: Box::new(payload),
            arrival: self.clock,
            bytes,
        };
        let mbox = &self.shared.boxes[dst];
        mbox.queues
            .lock()
            .entry((self.rank, tag))
            .or_default()
            .push_back(msg);
        mbox.signal.notify_all();
    }

    /// Receive the next message from `src` with `tag`, blocking until it is
    /// available. The receiver's clock advances to at least the message's
    /// arrival time. Matching is strictly by `(src, tag)` — there is no
    /// wildcard receive, which keeps execution and floating point
    /// deterministic.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        let (data, arrival) = self.recv_raw(src, tag);
        if arrival > self.clock {
            self.comm_s += arrival - self.clock;
            self.clock = arrival;
        }
        match data.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "rank {}: type mismatch receiving (src={src}, tag={tag}): expected {}",
                self.rank,
                std::any::type_name::<T>()
            ),
        }
    }

    fn recv_raw(&mut self, src: usize, tag: u64) -> (Box<dyn Any + Send>, f64) {
        assert!(src < self.nranks, "recv from rank {src} of {}", self.nranks);
        let mbox = &self.shared.boxes[self.rank];
        let mut queues = mbox.queues.lock();
        loop {
            if let Some(q) = queues.get_mut(&(src, tag)) {
                if let Some(msg) = q.pop_front() {
                    return (msg.data, msg.arrival);
                }
            }
            if self.shared.failed.load(Ordering::SeqCst) {
                panic!(
                    "rank {} aborting recv(src={src}, tag={tag}): a peer rank panicked",
                    self.rank
                );
            }
            mbox.signal.wait_for(&mut queues, Duration::from_millis(50));
        }
    }

    /// Snapshot of this rank's statistics.
    pub fn stats(&self) -> RankStats {
        RankStats {
            clock_s: self.clock,
            compute_s: self.compute_s,
            comm_s: self.comm_s,
            flops: self.flops,
            bytes_sent: self.bytes_sent,
            msgs_sent: self.msgs_sent,
            mem_peak: self.mem_peak,
        }
    }
}

/// Report of a completed SPMD run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank statistics.
    pub stats: Vec<RankStats>,
    /// Simulated makespan: the maximum final virtual clock (seconds).
    pub makespan_s: f64,
}

impl<R> RunReport<R> {
    /// Total flops across ranks.
    pub fn total_flops(&self) -> f64 {
        self.stats.iter().map(|s| s.flops).sum()
    }

    /// Total payload bytes sent across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total messages sent across ranks.
    pub fn total_msgs(&self) -> u64 {
        self.stats.iter().map(|s| s.msgs_sent).sum()
    }

    /// Modelled aggregate Gflop/s achieved over the makespan.
    pub fn gflops(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.total_flops() / self.makespan_s / 1e9
        } else {
            0.0
        }
    }

    /// Maximum per-rank peak tracked memory (bytes).
    pub fn max_mem_peak(&self) -> u64 {
        self.stats.iter().map(|s| s.mem_peak).max().unwrap_or(0)
    }
}

/// A simulated message-passing machine with a fixed rank count and cost
/// model.
pub struct Machine {
    nranks: usize,
    model: CostModel,
}

impl Machine {
    /// Create a machine with `nranks` ranks.
    pub fn new(nranks: usize, model: CostModel) -> Self {
        assert!(nranks > 0);
        Machine { nranks, model }
    }

    /// Run an SPMD program: `f` is executed once per rank, each on its own
    /// OS thread. Panics in any rank abort the whole run (peers unblock and
    /// re-panic) and the panic is propagated to the caller.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        let shared = Arc::new(Shared {
            boxes: (0..self.nranks).map(|_| Mailbox::default()).collect(),
            failed: AtomicBool::new(false),
            model: self.model,
        });
        let mut results: Vec<Option<(R, RankStats)>> = (0..self.nranks).map(|_| None).collect();
        let fref = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(r, slot)| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("mpsim-rank-{r}"))
                        .stack_size(4 << 20)
                        .spawn_scoped(scope, move || {
                            let mut rank = Rank {
                                rank: r,
                                nranks: shared.boxes.len(),
                                shared: Arc::clone(&shared),
                                clock: 0.0,
                                compute_s: 0.0,
                                comm_s: 0.0,
                                flops: 0.0,
                                bytes_sent: 0,
                                msgs_sent: 0,
                                mem_cur: 0,
                                mem_peak: 0,
                            };
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    fref(&mut rank)
                                }));
                            match out {
                                Ok(v) => {
                                    *slot = Some((v, rank.stats()));
                                    Ok(())
                                }
                                Err(e) => {
                                    shared.failed.store(true, Ordering::SeqCst);
                                    for b in &shared.boxes {
                                        b.signal.notify_all();
                                    }
                                    Err(e)
                                }
                            }
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            let mut first_panic = None;
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(payload)) => {
                        first_panic.get_or_insert(payload);
                    }
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            if let Some(p) = first_panic {
                std::panic::resume_unwind(p);
            }
        });
        let mut out = Vec::with_capacity(self.nranks);
        let mut stats = Vec::with_capacity(self.nranks);
        for slot in results {
            let (v, s) = slot.expect("rank finished without result despite no panic");
            out.push(v);
            stats.push(s);
        }
        let makespan = stats.iter().fold(0.0f64, |m, s| m.max(s.clock_s));
        RunReport {
            results: out,
            stats,
            makespan_s: makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::CostModel;

    #[test]
    fn single_rank_runs() {
        let r = Machine::new(1, CostModel::zero_cost()).run(|rank| {
            rank.compute(1000.0);
            rank.rank() * 10
        });
        assert_eq!(r.results, vec![0]);
        assert_eq!(r.stats[0].flops, 1000.0);
    }

    #[test]
    fn ping_pong_values_and_clock() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 0.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, 42u64); // 8 bytes: occupancy 1 + 4 = 5
                let x: u64 = rank.recv(1, 2);
                x
            } else {
                let x: u64 = rank.recv(0, 1); // arrival at 5 -> clock 5
                rank.send(0, 2, x + 1); // clock 10
                x + 1
            }
        });
        assert_eq!(r.results, vec![43, 43]);
        // Rank 1 finishes at 10; rank 0 waits for arrival at 10.
        assert_eq!(r.stats[1].clock_s, 10.0);
        assert_eq!(r.stats[0].clock_s, 10.0);
        assert_eq!(r.makespan_s, 10.0);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                for i in 0..10u64 {
                    rank.send(1, 3, i);
                }
                0
            } else {
                let mut got = Vec::new();
                for _ in 0..10 {
                    got.push(rank.recv::<u64>(0, 3));
                }
                assert_eq!(got, (0..10).collect::<Vec<_>>());
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    fn tags_demultiplex() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 7, 70u64);
                rank.send(1, 8, 80u64);
                0
            } else {
                // Receive in the opposite order of sending.
                let b: u64 = rank.recv(0, 8);
                let a: u64 = rank.recv(0, 7);
                assert_eq!((a, b), (70, 80));
                1
            }
        });
        assert_eq!(r.results.len(), 2);
    }

    #[test]
    fn vectors_round_trip() {
        let r = Machine::new(2, CostModel::bluegene_p()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 0, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let v: Vec<f64> = rank.recv(0, 0);
                v.iter().sum::<f64>()
            }
        });
        assert_eq!(r.results[1], 6.0);
        // 24 payload bytes tracked.
        assert_eq!(r.total_bytes(), 24);
        assert_eq!(r.total_msgs(), 1);
    }

    #[test]
    fn deterministic_timing_across_runs() {
        let run = || {
            Machine::new(4, CostModel::bluegene_p()).run(|rank| {
                let p = rank.nranks();
                // All-to-all ping with compute in between.
                for d in 0..p {
                    if d != rank.rank() {
                        rank.send(d, 5, vec![rank.rank() as f64; 100]);
                    }
                }
                rank.compute(1e6);
                let mut acc = 0.0;
                for s in 0..p {
                    if s != rank.rank() {
                        let v: Vec<f64> = rank.recv(s, 5);
                        acc += v[0];
                    }
                }
                acc
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        for (x, y) in a.stats.iter().zip(&b.stats) {
            assert_eq!(x.clock_s, y.clock_s);
        }
    }

    #[test]
    fn compute_and_memory_tracking() {
        let r = Machine::new(1, CostModel::bluegene_p()).run(|rank| {
            rank.alloc(1000);
            rank.alloc(500);
            rank.free(1000);
            rank.alloc(200);
            rank.compute(3.4e9); // 1 second at 3.4 Gflop/s
            rank.stats().mem_peak
        });
        assert_eq!(r.results[0], 1500);
        assert!((r.stats[0].clock_s - 1.0).abs() < 1e-9);
        assert!((r.stats[0].compute_s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate_and_unblock_peers() {
        Machine::new(3, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                panic!("boom");
            }
            // Peers block on a message that will never come; the failure
            // flag must wake and abort them rather than hang the test.
            let _: u64 = rank.recv(0, 9);
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_is_diagnosed() {
        Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 0, 1u64);
            } else {
                let _: Vec<f64> = rank.recv(0, 0);
            }
        });
    }

    #[test]
    fn gflops_reporting() {
        let r = Machine::new(2, CostModel::bluegene_p()).run(|rank| {
            rank.compute(3.4e9);
            rank.rank()
        });
        // 2 ranks x 3.4 Gflop in 1 simulated second = 6.8 Gflop/s.
        assert!((r.gflops() - 6.8).abs() < 1e-6);
    }
}
