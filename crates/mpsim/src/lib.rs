//! A deterministic message-passing machine simulator.
//!
//! This crate stands in for MPI on a massively parallel machine (the SC'09
//! testbed was a Blue Gene/P-class system): each *rank* runs as a real OS
//! thread executing the real distributed algorithm and exchanging real
//! data, while a per-rank **virtual clock** advances according to an α–β
//! communication model and a per-flop compute rate ([`model::CostModel`]).
//!
//! What is real: every byte of payload, the algorithm's control flow, its
//! message pattern, and all numeric results (bit-for-bit deterministic —
//! receives are matched by `(source, tag)`, never by arrival order).
//! What is modelled: *time*. The simulated makespan is derived from the
//! same flop/byte/message counts that determine wall-clock time on real
//! hardware, which is what the scaling experiments measure.
//!
//! # Nonblocking communication
//!
//! [`Rank::send`] models an eager blocking send: the sender is occupied for
//! the full `α + bytes·β`. [`Rank::isend`] models a nonblocking send whose
//! transfer is pipelined by the network: the sender pays only `α`, the
//! `bytes·β` transfer proceeds in the background (counted in
//! `comm_hidden_s`), and the message arrives at the receiver at
//! `clock_after_α + bytes·β`. On the receive side, [`Rank::probe`],
//! [`Rank::try_recv`] and [`Rank::wait_any`] let a schedule react to what
//! has *virtually* arrived.
//!
//! Determinism is preserved by a strict rule: every nonblocking decision is
//! a function of **virtual** arrival times, never of host-thread timing.
//! An operation that needs to know an arrival time physically blocks the OS
//! thread (without advancing the virtual clock) until the message is
//! posted, then decides. This is safe for SPMD programs in which every
//! expected message is eventually sent without further action from the
//! waiter; genuine protocol errors are caught by all-ranks-blocked deadlock
//! detection, which aborts the run with a per-rank diagnostic instead of
//! hanging.
//!
//! ```
//! use parfact_mpsim::{Machine, model::CostModel};
//!
//! let report = Machine::new(4, CostModel::bluegene_p()).run(|rank| {
//!     // SPMD program: ring-pass a token.
//!     let p = rank.nranks();
//!     let next = (rank.rank() + 1) % p;
//!     let prev = (rank.rank() + p - 1) % p;
//!     rank.send(next, 7, rank.rank() as u64);
//!     let token: u64 = rank.recv(prev, 7);
//!     token
//! });
//! assert_eq!(report.results, vec![3, 0, 1, 2]);
//! assert!(report.makespan_s > 0.0);
//! ```

pub mod collective;
pub mod fault;
pub mod model;
pub mod payload;

pub use fault::{Fault, FaultCounts, FaultPlan};

use model::CostModel;
use parfact_trace::{Phase, SpanEvent};
use parking_lot::{Condvar, Mutex};
use payload::Payload;
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Typed failure of a deadline-aware receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecvError {
    /// No matching message became available within the deadline: either the
    /// head arrival lies past it, or the source rank crashed/finished
    /// without posting one. `waited` is the virtual seconds spent waiting
    /// (the timeout); the caller's clock has been advanced past them.
    TimedOut {
        /// Source rank the receive was matching.
        src: usize,
        /// Message tag the receive was matching.
        tag: u64,
        /// Virtual seconds waited in vain.
        waited: f64,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::TimedOut { src, tag, waited } => write!(
                f,
                "receive timed out after {waited:.6}s waiting on (src={src}, tag={tag})"
            ),
        }
    }
}

/// A message in flight.
struct Msg {
    data: Box<dyn Any + Send>,
    /// Virtual time at which the message is fully available at the receiver.
    arrival: f64,
    /// Payload bytes, as charged to the sender. Read back when the message
    /// is consumed (receive counters) and for the end-of-run reconciliation
    /// of undrained queues against the communication matrix.
    bytes: usize,
}

#[derive(Default)]
struct Queues {
    map: HashMap<(usize, u64), std::collections::VecDeque<Msg>>,
    /// Messages currently queued (all keys).
    depth: usize,
    /// High-water mark of `depth`. A physical diagnostic of buffering
    /// pressure: it can vary run-to-run with host scheduling (unlike clocks
    /// and numeric results, which are deterministic).
    depth_peak: usize,
}

impl Queues {
    fn head_arrival(&self, key: &(usize, u64)) -> Option<f64> {
        self.map.get(key).and_then(|q| q.front()).map(|m| m.arrival)
    }
}

#[derive(Default)]
struct Mailbox {
    queues: Mutex<Queues>,
    signal: Condvar,
}

/// Deadlock-detection registry: which ranks are parked in a blocking
/// receive (and on which keys), which have finished their program, and
/// which have crashed under an injected fault — finished and crashed ranks
/// can never send again.
#[derive(Default)]
/// One parked rank's registration: what it waits for, and the absolute
/// virtual deadline of the wait (if any). Deadline-bearing waits are
/// resolved *at quiescence* by the scanner, which elects the earliest
/// deadline to fire — never by rank threads racing each other on host time.
struct Blocked {
    keys: Vec<(usize, u64)>,
    /// Absolute virtual deadline (wait-start clock + timeout), if any.
    deadline: Option<f64>,
    /// True for a per-call [`Rank::recv_deadline`] (the caller handles the
    /// timeout and resumes); false for the machine-wide receive timeout
    /// (a fired timeout aborts the whole run).
    call: bool,
}

struct WaitState {
    blocked: Vec<Option<Blocked>>,
    done: Vec<bool>,
    crashed: Vec<bool>,
    /// Rank elected by the scanner to fire its timeout. Set only at
    /// quiescence (every rank finished, crashed, or parked), consumed by
    /// the elected rank on its next poll. While an election is pending the
    /// scanner makes no further decisions.
    elected: Option<usize>,
}

/// Why a blocked run was aborted: a genuine protocol deadlock, or a
/// blockage caused by a crashed rank holding undelivered sends. The two get
/// different verdicts — conflating them (the old detector's behaviour)
/// mis-diagnoses an injected rank failure as a protocol bug.
#[derive(Clone)]
enum AbortReason {
    Deadlock(String),
    RankFailure(String),
}

/// Machine-wide tallies of injected-fault activity (lock-free: bumped from
/// rank threads, snapshotted after the run).
#[derive(Default)]
struct FaultTallies {
    crashes: AtomicU64,
    delayed_msgs: AtomicU64,
    duplicated_msgs: AtomicU64,
    timeouts: AtomicU64,
}

impl FaultTallies {
    fn snapshot(&self) -> FaultCounts {
        FaultCounts {
            crashes: self.crashes.load(Ordering::Relaxed),
            delayed_msgs: self.delayed_msgs.load(Ordering::Relaxed),
            duplicated_msgs: self.duplicated_msgs.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    boxes: Vec<Mailbox>,
    failed: AtomicBool,
    /// Registry used only for deadlock detection — see `register_blocked`.
    waiting: Mutex<WaitState>,
    /// Diagnostic set by the rank that detects an unresolvable blockage;
    /// every parked rank re-raises it.
    abort_reason: Mutex<Option<AbortReason>>,
    faults: FaultTallies,
    model: CostModel,
}

impl Shared {
    /// With the `waiting` lock held: if every rank is either finished or
    /// parked, and no parked rank's keys have a posted message anywhere,
    /// the blockage can never resolve by itself. Resolution is decided
    /// *here*, at quiescence, where every parked clock is frozen and the
    /// state is a deterministic function of the program and fault plan:
    ///
    /// 1. a per-call-deadline waiter on a crashed/finished source resolves
    ///    itself (its own gone-check fires on the next poll) — wait;
    /// 2. else elect the earliest per-call deadline to fire its timeout
    ///    (the caller fails over and the run continues);
    /// 3. else, with a crashed rank in the picture, abort as a rank
    ///    failure — the precise verdict, without burning receive deadlines;
    /// 4. else elect the earliest machine-wide deadline to fire (the rank
    ///    aborts the run with a typed timeout);
    /// 5. else record a protocol deadlock.
    ///
    /// Rank threads never resolve machine-wide deadlines on their own —
    /// that would race the abort against still-running peers and make
    /// failed-attempt clocks (and the makespan) host-timing-dependent.
    ///
    /// Lock order: `waiting` before any mailbox `queues`; waiters never
    /// hold their own `queues` lock while taking `waiting`.
    fn deadlock_scan(&self, w: &mut WaitState) {
        // A run that already failed (peer panic or error) aborts through
        // the failure flag; a deadlock verdict now would be spurious and
        // could mask the real panic.
        if self.failed.load(Ordering::SeqCst) {
            return;
        }
        // A pending election will wake its rank and change the state;
        // nothing further is decidable until it is consumed.
        if w.elected.is_some() {
            return;
        }
        let any_blocked = w.blocked.iter().any(Option::is_some);
        let all_stuck = any_blocked
            && w.done
                .iter()
                .zip(&w.crashed)
                .zip(&w.blocked)
                .all(|((&done, &crashed), blocked)| done || crashed || blocked.is_some());
        if !all_stuck {
            return;
        }
        let live = w.blocked.iter().enumerate().any(|(r, entry)| match entry {
            Some(b) => {
                let q = self.boxes[r].queues.lock();
                b.keys.iter().any(|k| q.head_arrival(k).is_some())
            }
            None => false,
        });
        if live {
            return;
        }
        // Per-call waiters on a gone source unstick themselves via the
        // gone-check in `wait_heads`; let them.
        let self_resolving = w.blocked.iter().any(|e| {
            e.as_ref().is_some_and(|b| {
                b.call
                    && b.deadline.is_some()
                    && b.keys.iter().any(|&(s, _)| w.done[s] || w.crashed[s])
            })
        });
        if self_resolving {
            return;
        }
        // Earliest-deadline election among parked ranks of the given kind.
        // Deadlines are virtual, so the choice is deterministic; ties break
        // by rank number.
        let elect = |w: &WaitState, call: bool| -> Option<usize> {
            w.blocked
                .iter()
                .enumerate()
                .filter_map(|(r, e)| {
                    e.as_ref()
                        .filter(|b| b.call == call)
                        .and_then(|b| b.deadline)
                        .map(|d| (d, r))
                })
                .min_by(|a, b| a.partial_cmp(b).expect("NaN deadline"))
                .map(|(_, r)| r)
        };
        let any_crashed = w.crashed.iter().any(|&c| c);
        let winner = elect(w, true).or_else(|| {
            if any_crashed {
                // A crashed rank explains the blockage outright: abort with
                // the rank-failure verdict instead of electing a machine-
                // wide timeout that would burn the full deadline first.
                None
            } else {
                elect(w, false)
            }
        });
        if let Some(r) = winner {
            w.elected = Some(r);
            self.boxes[r].signal.notify_all();
            return;
        }
        // Classify *before* declaring deadlock: when a crashed rank is in
        // the picture, every live rank being blocked is the expected
        // consequence of the rank failure (the dead rank holds undelivered
        // sends), not a protocol bug — the verdict must be a rank failure,
        // never a spurious deadlock.
        use std::fmt::Write;
        let mut diag = if any_crashed {
            String::from(
                "mpsim rank failure: a crashed rank holds undelivered sends and \
                 every surviving rank is finished or blocked on them\n",
            )
        } else {
            String::from(
                "mpsim deadlock: every rank is finished or blocked in recv \
                 with no matching message in flight\n",
            )
        };
        for (r, entry) in w.blocked.iter().enumerate() {
            if w.crashed[r] {
                let _ = writeln!(diag, "  rank {r} crashed");
                continue;
            }
            match entry {
                Some(b) => {
                    let list = b
                        .keys
                        .iter()
                        .map(|(s, t)| format!("(src={s}, tag={t})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let _ = writeln!(diag, "  rank {r} waiting on: {list}");
                }
                None => {
                    let _ = writeln!(diag, "  rank {r} finished");
                }
            }
        }
        *self.abort_reason.lock() = Some(if any_crashed {
            AbortReason::RankFailure(diag)
        } else {
            AbortReason::Deadlock(diag)
        });
        self.failed.store(true, Ordering::SeqCst);
        for b in &self.boxes {
            b.signal.notify_all();
        }
    }

    /// Mark rank `r`'s program as completed: it can never send again, so a
    /// deadlock among the remaining ranks may now be decidable.
    fn mark_done(&self, r: usize) {
        let mut w = self.waiting.lock();
        w.done[r] = true;
        self.deadlock_scan(&mut w);
    }
}

/// Install (once, process-wide) a panic hook that silences the machine's
/// internal unwind sentinels. Ranks crash, time out, and abort by panicking
/// with typed payloads that the machine always catches; without this filter
/// every injected fault would spray "thread panicked" noise and backtraces
/// on stderr. Any other panic payload falls through to the previous hook
/// untouched.
fn install_sentinel_panic_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let sentinel = p.is::<PeerAborted>()
                || p.is::<DeadlockAbort>()
                || p.is::<StalledOnCrash>()
                || p.is::<RankCrashed>()
                || p.is::<TimeoutAbort>();
            if !sentinel {
                prev(info);
            }
        }));
    });
}

/// Panic payload used to abort ranks that are blocked on a peer which
/// panicked or returned an error. Filtered out when the machine picks which
/// panic to propagate.
struct PeerAborted;

/// Panic payload used to unwind ranks parked in a genuine deadlock; the
/// machine converts it back into the legacy `String` diagnostic panic (or a
/// [`RunVerdict::Deadlocked`] under `run_verdict`).
struct DeadlockAbort;

/// Panic payload used to unwind ranks that are provably blocked on a
/// crashed rank's undelivered sends. The machine reports the run as
/// [`RunVerdict::RankFailed`], never as a deadlock.
struct StalledOnCrash;

/// Panic payload raised by a rank the fault plan crashes. Caught by the
/// machine and turned into a [`RunVerdict::RankFailed`].
struct RankCrashed {
    at_s: f64,
}

/// Panic payload raised by a blocking receive that exceeded the
/// machine-wide [`Machine::recv_timeout`]. Caught by the machine and turned
/// into a [`RunVerdict::TimedOut`].
struct TimeoutAbort {
    src: usize,
    tag: u64,
    waited_s: f64,
}

/// This rank's view of the machine's [`FaultPlan`], compiled once at rank
/// start so the per-operation checks are cheap.
#[derive(Default)]
struct RankFaults {
    /// Earliest virtual time at which this rank crashes.
    crash_at: Option<f64>,
    /// Earliest send ordinal (1-based) at which this rank crashes.
    crash_on_send: Option<u64>,
    /// Extra in-network delay (seconds) per destination rank.
    delay_out: HashMap<usize, f64>,
    /// Destinations whose messages are delivered twice.
    dup_out: HashSet<usize>,
    /// Sends attempted so far (for `crash_on_send`).
    sends: u64,
}

impl RankFaults {
    fn compile(plan: &FaultPlan, rank: usize, model: &CostModel) -> Self {
        let mut f = RankFaults::default();
        for fault in &plan.faults {
            match *fault {
                Fault::CrashAt { rank: r, at_s } if r == rank => {
                    f.crash_at = Some(f.crash_at.map_or(at_s, |t: f64| t.min(at_s)));
                }
                Fault::CrashOnSend { rank: r, nth } if r == rank => {
                    f.crash_on_send = Some(f.crash_on_send.map_or(nth, |k: u64| k.min(nth)));
                }
                Fault::DelayLink { src, dst, alphas } if src == rank => {
                    *f.delay_out.entry(dst).or_insert(0.0) += alphas * model.alpha_s;
                }
                Fault::DuplicateLink { src, dst } if src == rank => {
                    f.dup_out.insert(dst);
                }
                _ => {}
            }
        }
        f
    }
}

/// Tag-classification spec for the per-link communication matrix: class
/// names plus a pure function mapping a message tag to a class index.
/// Installed once per machine ([`Machine::comm_matrix`]) and shared by
/// every rank.
struct CommSpec {
    names: Vec<String>,
    classify: Box<dyn Fn(u64) -> usize + Send + Sync>,
}

/// One rank's outgoing traffic, accounted per `(destination, tag class)`.
/// Recording is pure counter arithmetic on the sending rank — it never
/// reads or writes virtual clocks, so traced and untraced runs are bitwise
/// identical (same discipline as span recording).
#[derive(Debug, Clone, PartialEq)]
pub struct CommRow {
    /// Number of ranks (row length).
    pub nranks: usize,
    /// Number of tag classes.
    pub nclasses: usize,
    /// Payload bytes sent, indexed `dst * nclasses + class`. Every posted
    /// copy is counted, including fault-injected duplicates.
    pub bytes: Vec<u64>,
    /// Messages sent, same indexing.
    pub msgs: Vec<u64>,
}

impl CommRow {
    fn new(nranks: usize, nclasses: usize) -> Self {
        CommRow {
            nranks,
            nclasses,
            bytes: vec![0; nranks * nclasses],
            msgs: vec![0; nranks * nclasses],
        }
    }

    /// Total payload bytes this rank sent.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages this rank sent.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }
}

/// Full src×dst×class traffic matrix of a run, assembled from the per-rank
/// [`CommRow`]s. Row `src` holds what `src` sent; column sums therefore
/// count what was *posted to* a rank (drained or not).
#[derive(Debug, Clone, PartialEq)]
pub struct CommMatrix {
    /// Number of ranks.
    pub nranks: usize,
    /// Tag-class names, indexed by class.
    pub class_names: Vec<String>,
    /// Payload bytes, indexed `(src * nranks + dst) * nclasses + class`.
    pub bytes: Vec<u64>,
    /// Message counts, same indexing.
    pub msgs: Vec<u64>,
}

impl CommMatrix {
    fn new(nranks: usize, class_names: Vec<String>) -> Self {
        let n = nranks * nranks * class_names.len();
        CommMatrix {
            nranks,
            class_names,
            bytes: vec![0; n],
            msgs: vec![0; n],
        }
    }

    /// Number of tag classes.
    pub fn nclasses(&self) -> usize {
        self.class_names.len()
    }

    /// `(bytes, msgs)` on the `src → dst` link in `class`.
    pub fn at(&self, src: usize, dst: usize, class: usize) -> (u64, u64) {
        let i = (src * self.nranks + dst) * self.nclasses() + class;
        (self.bytes[i], self.msgs[i])
    }

    /// Bytes sent by `src` (row sum over destinations and classes).
    pub fn sent_bytes(&self, src: usize) -> u64 {
        let nc = self.nclasses();
        let row = src * self.nranks * nc;
        self.bytes[row..row + self.nranks * nc].iter().sum()
    }

    /// Messages sent by `src` (row sum).
    pub fn sent_msgs(&self, src: usize) -> u64 {
        let nc = self.nclasses();
        let row = src * self.nranks * nc;
        self.msgs[row..row + self.nranks * nc].iter().sum()
    }

    /// Bytes posted to `dst` (column sum over sources and classes).
    pub fn posted_bytes(&self, dst: usize) -> u64 {
        (0..self.nranks)
            .flat_map(|s| (0..self.nclasses()).map(move |c| self.at(s, dst, c).0))
            .sum()
    }

    /// Messages posted to `dst` (column sum).
    pub fn posted_msgs(&self, dst: usize) -> u64 {
        (0..self.nranks)
            .flat_map(|s| (0..self.nclasses()).map(move |c| self.at(s, dst, c).1))
            .sum()
    }

    /// Total bytes in tag class `class` across all links.
    pub fn class_bytes(&self, class: usize) -> u64 {
        self.bytes.iter().skip(class).step_by(self.nclasses()).sum()
    }

    /// Total bytes across all links and classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all links and classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }
}

/// Per-rank execution statistics (virtual time and counters).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Final virtual clock (seconds).
    pub clock_s: f64,
    /// Virtual seconds spent computing.
    pub compute_s: f64,
    /// Virtual seconds spent in communication (send occupancy + recv waits).
    pub comm_s: f64,
    /// Modelled transfer seconds hidden under compute by [`Rank::isend`]:
    /// `bytes·β` that never occupied the sender's clock.
    pub comm_hidden_s: f64,
    /// Peak number of messages queued at this rank's mailbox at once
    /// (physical high-water mark; diagnostic, not deterministic).
    pub queue_peak: u64,
    /// Floating-point operations executed (as reported via `compute`).
    pub flops: f64,
    /// Payload bytes sent (every posted copy, fault duplicates included).
    pub bytes_sent: u64,
    /// Messages sent (every posted copy, fault duplicates included).
    pub msgs_sent: u64,
    /// Payload bytes received (consumed from the mailbox).
    pub bytes_recv: u64,
    /// Messages received (consumed from the mailbox).
    pub msgs_recv: u64,
    /// Peak tracked memory (bytes) — fronts/factors report via `alloc`/`free`.
    pub mem_peak: u64,
}

impl RankStats {
    /// Fold this rank's statistics into the shared report schema
    /// ([`parfact_trace::RankReport`]) used by every engine's
    /// `FactorReport`.
    pub fn to_report(&self, rank: usize) -> parfact_trace::RankReport {
        parfact_trace::RankReport {
            rank,
            clock_s: self.clock_s,
            compute_s: self.compute_s,
            comm_s: self.comm_s,
            comm_hidden_s: self.comm_hidden_s,
            queue_peak: self.queue_peak,
            flops: self.flops,
            bytes_sent: self.bytes_sent,
            msgs_sent: self.msgs_sent,
            bytes_recv: self.bytes_recv,
            msgs_recv: self.msgs_recv,
            mem_peak_bytes: self.mem_peak,
        }
    }
}

/// Handle returned by [`Rank::isend`]. The payload is already en route; the
/// handle records when the modelled transfer completes so a sender that
/// must reuse the "buffer" can [`Rank::wait_send`] for it.
#[derive(Debug, Clone, Copy)]
pub struct SendReq {
    /// Virtual time at which the transfer is complete (equals the
    /// receiver-side arrival time).
    pub complete_at: f64,
}

/// Handle a rank's program uses to talk to the machine.
pub struct Rank {
    rank: usize,
    nranks: usize,
    shared: Arc<Shared>,
    clock: f64,
    compute_s: f64,
    comm_s: f64,
    comm_hidden_s: f64,
    flops: f64,
    bytes_sent: u64,
    msgs_sent: u64,
    bytes_recv: u64,
    msgs_recv: u64,
    mem_cur: u64,
    mem_peak: u64,
    /// Outgoing-traffic matrix row, present when the machine installed a
    /// [`Machine::comm_matrix`] spec. Pure counters: recording never reads
    /// or advances any clock.
    comm: Option<(Arc<CommSpec>, CommRow)>,
    /// When on, communication ops and [`Rank::compute_as`] append
    /// [`SpanEvent`]s (virtual timestamps, `who = rank`). Recording never
    /// touches the clocks, so traced and untraced runs are bitwise
    /// identical. `RefCell` because `probe`/`probe_all` take `&self`; the
    /// `Rank` never leaves its own thread.
    trace: bool,
    events: RefCell<Vec<SpanEvent>>,
    /// Compiled view of the machine's fault plan for this rank.
    faults: RankFaults,
    /// Machine-wide default receive deadline (virtual seconds), applied by
    /// every blocking receive/wait; `None` leaves lost-message detection to
    /// the deadlock scanner alone.
    recv_timeout: Option<f64>,
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The machine's cost model.
    pub fn model(&self) -> &CostModel {
        &self.shared.model
    }

    /// Advance the virtual clock by the cost of `flops` floating-point
    /// operations. Call this next to the real computation it accounts for.
    pub fn compute(&mut self, flops: f64) {
        let dt = flops * self.shared.model.flop_time_s;
        self.clock += dt;
        self.compute_s += dt;
        self.flops += flops;
        self.maybe_crash();
    }

    /// [`Rank::compute`] plus an attributed [`SpanEvent`] (when event
    /// tracing is on): the span covers the virtual interval the charge
    /// occupied and tags it with a phase and optionally a supernode.
    pub fn compute_as(&mut self, flops: f64, phase: Phase, supernode: Option<usize>) {
        let t0 = self.clock;
        self.compute(flops);
        self.push_span(phase, supernode, t0, self.clock - t0);
    }

    /// Toggle event recording. Off by default; [`Machine::trace_events`]
    /// turns it on for every rank. Programs switch it off to exclude
    /// epilogue traffic (e.g. factor gather) from the timeline, mirroring
    /// what their stats snapshots exclude.
    pub fn set_trace_events(&mut self, on: bool) {
        self.trace = on;
    }

    /// Is event recording currently on?
    pub fn trace_events_enabled(&self) -> bool {
        self.trace
    }

    /// Drain the recorded events (chronological for this rank).
    pub fn take_events(&mut self) -> Vec<SpanEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    #[inline]
    fn push_span(&self, phase: Phase, supernode: Option<usize>, start_s: f64, dur_s: f64) {
        if self.trace {
            self.events.borrow_mut().push(SpanEvent {
                phase,
                supernode,
                who: self.rank,
                start_s,
                dur_s,
            });
        }
    }

    /// Advance the virtual clock by an explicit amount of seconds (e.g.
    /// memory-bound phases accounted by bytes / bandwidth).
    pub fn advance(&mut self, seconds: f64) {
        self.clock += seconds;
        self.compute_s += seconds;
        self.maybe_crash();
    }

    /// Crash this rank now if its fault plan schedules a crash at or before
    /// the current virtual clock. Called at operation boundaries, so the
    /// crash point is a deterministic function of virtual time.
    #[inline]
    fn maybe_crash(&self) {
        if let Some(t) = self.faults.crash_at {
            if self.clock >= t {
                self.crash_now();
            }
        }
    }

    /// Count a send attempt and crash if the plan kills this rank on it.
    #[inline]
    fn note_send_attempt(&mut self) {
        self.faults.sends += 1;
        if let Some(n) = self.faults.crash_on_send {
            if self.faults.sends >= n {
                self.crash_now();
            }
        }
    }

    /// Execute an injected crash: mark the rank dead in the wait registry
    /// (so the blockage scanner can attribute stalls to it), wake every
    /// parked peer, and unwind with the crash sentinel. The rank's already
    /// posted messages stay deliverable — a crash loses future sends only.
    fn crash_now(&self) -> ! {
        self.shared.faults.crashes.fetch_add(1, Ordering::Relaxed);
        self.push_span(Phase::Fault, None, self.clock, 0.0);
        {
            let mut w = self.shared.waiting.lock();
            w.crashed[self.rank] = true;
            w.blocked[self.rank] = None;
            self.shared.deadlock_scan(&mut w);
        }
        for b in &self.shared.boxes {
            b.signal.notify_all();
        }
        std::panic::panic_any(RankCrashed { at_s: self.clock });
    }

    /// Report a tracked allocation (fronts, factor blocks).
    pub fn alloc(&mut self, bytes: usize) {
        self.mem_cur += bytes as u64;
        self.mem_peak = self.mem_peak.max(self.mem_cur);
    }

    /// Report a tracked deallocation.
    pub fn free(&mut self, bytes: usize) {
        self.mem_cur = self.mem_cur.saturating_sub(bytes as u64);
    }

    fn post(&self, dst: usize, tag: u64, data: Box<dyn Any + Send>, arrival: f64, bytes: usize) {
        let mbox = &self.shared.boxes[dst];
        {
            let mut q = mbox.queues.lock();
            q.map.entry((self.rank, tag)).or_default().push_back(Msg {
                data,
                arrival,
                bytes,
            });
            q.depth += 1;
            q.depth_peak = q.depth_peak.max(q.depth);
        }
        mbox.signal.notify_all();
    }

    /// Post `payload` applying this rank's outgoing link faults: per-link
    /// in-network delay shifts the arrival (the sender's clock is
    /// untouched), and a duplicated link posts a second copy at the same
    /// arrival. Returns the (possibly delayed) arrival time and the number
    /// of copies posted (2 on a duplicated link) so the sender's byte and
    /// message counters can account every copy that actually entered the
    /// network — the receiver drains (or leaves queued) exactly that many.
    fn deliver<T: Payload>(
        &self,
        dst: usize,
        tag: u64,
        payload: T,
        arrival: f64,
        bytes: usize,
    ) -> (f64, u64) {
        let mut arrival = arrival;
        if let Some(&extra) = self.faults.delay_out.get(&dst) {
            if extra > 0.0 {
                arrival += extra;
                self.shared
                    .faults
                    .delayed_msgs
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let dup = self.faults.dup_out.contains(&dst);
        let copies = if dup { 2 } else { 1 };
        if dup {
            self.post(dst, tag, Box::new(payload.clone()), arrival, bytes);
            self.shared
                .faults
                .duplicated_msgs
                .fetch_add(1, Ordering::Relaxed);
        }
        self.post(dst, tag, Box::new(payload), arrival, bytes);
        (arrival, copies)
    }

    /// Account `copies` posted copies of a `bytes`-byte message to `dst`
    /// under `tag` on the sender's counters and (when installed) the
    /// communication-matrix row. Counter arithmetic only — no clock access,
    /// so accounting can never perturb virtual time.
    #[inline]
    fn note_posted(&mut self, dst: usize, tag: u64, bytes: usize, copies: u64) {
        self.bytes_sent += bytes as u64 * copies;
        self.msgs_sent += copies;
        if let Some((spec, row)) = self.comm.as_mut() {
            let class = (spec.classify)(tag);
            debug_assert!(
                class < spec.names.len(),
                "tag {tag} classified to {class} of {} classes",
                spec.names.len()
            );
            let i = dst * row.nclasses + class.min(row.nclasses - 1);
            row.bytes[i] += bytes as u64 * copies;
            row.msgs[i] += copies;
        }
    }

    /// Send `payload` to rank `dst` with `tag`. The sender is occupied for
    /// `α + bytes·β` virtual seconds (store-and-forward injection); the
    /// message becomes available to the receiver at the sender's clock after
    /// injection.
    pub fn send<T: Payload>(&mut self, dst: usize, tag: u64, payload: T) {
        assert!(dst < self.nranks, "send to rank {dst} of {}", self.nranks);
        assert_ne!(dst, self.rank, "self-sends are not modelled; restructure");
        self.maybe_crash();
        self.note_send_attempt();
        let bytes = payload.nbytes();
        let m = &self.shared.model;
        let dt = m.alpha_s + bytes as f64 * m.beta_s_per_byte;
        self.push_span(Phase::Comm, None, self.clock, dt);
        self.clock += dt;
        self.comm_s += dt;
        let (_, copies) = self.deliver(dst, tag, payload, self.clock, bytes);
        self.note_posted(dst, tag, bytes, copies);
    }

    /// Nonblocking send: the sender is occupied for `α` only; the `bytes·β`
    /// transfer is pipelined by the modelled network and charged to
    /// [`RankStats::comm_hidden_s`] instead of the clock. The message
    /// arrives at the receiver at `clock_after_α + bytes·β`.
    pub fn isend<T: Payload>(&mut self, dst: usize, tag: u64, payload: T) -> SendReq {
        assert!(dst < self.nranks, "isend to rank {dst} of {}", self.nranks);
        assert_ne!(dst, self.rank, "self-sends are not modelled; restructure");
        self.maybe_crash();
        self.note_send_attempt();
        let bytes = payload.nbytes();
        let m = &self.shared.model;
        let transfer = bytes as f64 * m.beta_s_per_byte;
        self.push_span(Phase::Comm, None, self.clock, m.alpha_s);
        self.clock += m.alpha_s;
        self.comm_s += m.alpha_s;
        self.comm_hidden_s += transfer;
        let (arrival, copies) = self.deliver(dst, tag, payload, self.clock + transfer, bytes);
        self.note_posted(dst, tag, bytes, copies);
        SendReq {
            complete_at: arrival,
        }
    }

    /// Wait for an [`Rank::isend`] transfer to complete: advances the clock
    /// to `complete_at` if it lies in the future. The exposed portion of
    /// the wait is moved from `comm_hidden_s` back to `comm_s` so the
    /// hidden counter stays honest.
    pub fn wait_send(&mut self, req: SendReq) {
        if req.complete_at > self.clock {
            let exposed = req.complete_at - self.clock;
            self.push_span(Phase::Wait, None, self.clock, exposed);
            self.clock = req.complete_at;
            self.comm_s += exposed;
            self.comm_hidden_s = (self.comm_hidden_s - exposed).max(0.0);
        }
    }

    /// Receive the next message from `src` with `tag`, blocking until it is
    /// available. The receiver's clock advances to at least the message's
    /// arrival time. Matching is strictly by `(src, tag)` — there is no
    /// wildcard receive, which keeps execution and floating point
    /// deterministic.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        self.maybe_crash();
        match self.recv_with_deadline(src, tag, self.recv_timeout, false) {
            Ok(v) => v,
            Err(RecvError::TimedOut { src, tag, waited }) => {
                // Machine-wide deadline exceeded: abort the whole run with
                // the timeout sentinel; the machine reports a structured
                // `RunVerdict::TimedOut`.
                std::panic::panic_any(TimeoutAbort {
                    src,
                    tag,
                    waited_s: waited,
                })
            }
        }
    }

    /// [`Rank::recv`] with an explicit per-call deadline: if no matching
    /// message is available within `timeout_s` virtual seconds (the head
    /// arrival lies past the deadline, or the source crashed/finished
    /// without posting one), return [`RecvError::TimedOut`] instead of
    /// relying on the deadlock detector. The clock advances to the deadline
    /// — the rank did wait that long — so callers can retry or fail over
    /// deterministically.
    pub fn recv_deadline<T: Payload>(
        &mut self,
        src: usize,
        tag: u64,
        timeout_s: f64,
    ) -> Result<T, RecvError> {
        self.maybe_crash();
        self.recv_with_deadline(src, tag, Some(timeout_s), true)
    }

    fn recv_with_deadline<T: Payload>(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Option<f64>,
        call: bool,
    ) -> Result<T, RecvError> {
        let deadline = timeout.map(|t| self.clock + t);
        let arrival = match self.wait_heads(std::slice::from_ref(&(src, tag)), deadline, call) {
            Ok(arrivals) => arrivals[0],
            Err(e) => return Err(self.note_timeout(e, deadline.expect("timeout without deadline"))),
        };
        if let Some(d) = deadline {
            if arrival > d {
                let e = RecvError::TimedOut {
                    src,
                    tag,
                    waited: d - self.clock,
                };
                return Err(self.note_timeout(e, d));
            }
        }
        let (data, arrival) = self.pop_head(src, tag);
        if arrival > self.clock {
            self.push_span(Phase::Wait, None, self.clock, arrival - self.clock);
            self.comm_s += arrival - self.clock;
            self.clock = arrival;
        }
        Ok(self.downcast(data, src, tag))
    }

    /// Account a timed-out wait: the rank virtually waited until the
    /// deadline, so the clock advances there (as a recorded wait), a fault
    /// marker lands on the timeline, and the machine-wide tally is bumped.
    fn note_timeout(&mut self, e: RecvError, deadline: f64) -> RecvError {
        self.shared.faults.timeouts.fetch_add(1, Ordering::Relaxed);
        if deadline > self.clock {
            let waited = deadline - self.clock;
            self.push_span(Phase::Wait, None, self.clock, waited);
            self.comm_s += waited;
            self.clock = deadline;
        }
        self.push_span(Phase::Fault, None, self.clock, 0.0);
        e
    }

    /// Block (physically, without advancing the virtual clock) until a
    /// message from `(src, tag)` is posted; return its virtual arrival time
    /// without consuming it.
    pub fn probe(&self, src: usize, tag: u64) -> f64 {
        self.maybe_crash();
        let deadline = self.recv_timeout.map(|t| self.clock + t);
        let arrival = match self.wait_heads(std::slice::from_ref(&(src, tag)), deadline, false) {
            Ok(arrivals) => arrivals[0],
            Err(e) => self.timeout_abort(e),
        };
        // Zero-duration marker at the probed arrival: probes consume no
        // virtual time, but the trace shows what the scheduler saw coming.
        self.push_span(Phase::Wait, None, arrival, 0.0);
        arrival
    }

    /// Abort the run on a machine-wide receive deadline from a `&self`
    /// context (probe paths): tally it and unwind with the sentinel.
    fn timeout_abort(&self, e: RecvError) -> ! {
        self.shared.faults.timeouts.fetch_add(1, Ordering::Relaxed);
        self.push_span(Phase::Fault, None, self.clock, 0.0);
        let RecvError::TimedOut { src, tag, waited } = e;
        std::panic::panic_any(TimeoutAbort {
            src,
            tag,
            waited_s: waited,
        })
    }

    /// Block (physically, without advancing the virtual clock) until every
    /// key in `keys` has a message at the head of its queue; return the head
    /// arrival times in `keys` order. This is the primitive that event-
    /// driven schedulers use to make decisions from virtual time only.
    pub fn probe_all(&self, keys: &[(usize, u64)]) -> Vec<f64> {
        self.maybe_crash();
        let deadline = self.recv_timeout.map(|t| self.clock + t);
        let arrivals = match self.wait_heads(keys, deadline, false) {
            Ok(arrivals) => arrivals,
            Err(e) => self.timeout_abort(e),
        };
        if let Some(next) = arrivals.iter().copied().reduce(f64::min) {
            // One marker per poll, at the nearest head arrival (the
            // scheduler's event horizon).
            self.push_span(Phase::Wait, None, next, 0.0);
        }
        arrivals
    }

    /// Receive from `(src, tag)` only if the message has already arrived in
    /// *virtual* time (head arrival ≤ current clock). The decision depends
    /// on virtual time only, never on host-thread scheduling, so control
    /// flow stays deterministic; the OS thread blocks until the head is
    /// posted so the arrival time is known.
    pub fn try_recv<T: Payload>(&mut self, src: usize, tag: u64) -> Option<T> {
        let arrival = self.probe(src, tag);
        if arrival > self.clock {
            return None;
        }
        let (data, _) = self.pop_head(src, tag);
        Some(self.downcast(data, src, tag))
    }

    /// Wait until the earliest (in virtual time) of the pending messages in
    /// `keys`, receive it, and return `(index_into_keys, value)`. Ties on
    /// arrival time break by `(src, tag)`, keeping the choice deterministic.
    /// The clock advances to the chosen message's arrival if it lies in the
    /// future.
    pub fn wait_any<T: Payload>(&mut self, keys: &[(usize, u64)]) -> (usize, T) {
        assert!(!keys.is_empty(), "wait_any on an empty key set");
        self.maybe_crash();
        let deadline = self.recv_timeout.map(|t| self.clock + t);
        let arrivals = match self.wait_heads(keys, deadline, false) {
            Ok(arrivals) => arrivals,
            Err(e) => self.timeout_abort(e),
        };
        let mut best = 0usize;
        for i in 1..keys.len() {
            let better =
                (arrivals[i], keys[i].0, keys[i].1) < (arrivals[best], keys[best].0, keys[best].1);
            if better {
                best = i;
            }
        }
        let (src, tag) = keys[best];
        if let Some(d) = deadline {
            if arrivals[best] > d {
                self.timeout_abort(RecvError::TimedOut {
                    src,
                    tag,
                    waited: d - self.clock,
                });
            }
        }
        let (data, arrival) = self.pop_head(src, tag);
        if arrival > self.clock {
            self.push_span(Phase::Wait, None, self.clock, arrival - self.clock);
            self.comm_s += arrival - self.clock;
            self.clock = arrival;
        }
        (best, self.downcast(data, src, tag))
    }

    fn downcast<T: Payload>(&self, data: Box<dyn Any + Send>, src: usize, tag: u64) -> T {
        match data.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "rank {}: type mismatch receiving (src={src}, tag={tag}): expected {}",
                self.rank,
                std::any::type_name::<T>()
            ),
        }
    }

    fn pop_head(&mut self, src: usize, tag: u64) -> (Box<dyn Any + Send>, f64) {
        let msg = {
            let mut q = self.shared.boxes[self.rank].queues.lock();
            let msg = q
                .map
                .get_mut(&(src, tag))
                .and_then(|d| d.pop_front())
                .expect("message head vanished between wait and pop");
            q.depth -= 1;
            msg
        };
        // Receive counters are bumped here, on the deterministic consume
        // path — never read back from mailbox state at snapshot time, which
        // (like `queue_peak`) could race host scheduling.
        self.bytes_recv += msg.bytes as u64;
        self.msgs_recv += 1;
        (msg.data, msg.arrival)
    }

    /// Abort this rank because the run failed elsewhere: re-raise the
    /// recorded abort diagnostic (deadlock or crash-induced stall) as the
    /// matching sentinel, otherwise unwind with `PeerAborted` (filtered out
    /// by the machine).
    fn check_failed(&self) {
        if self.shared.failed.load(Ordering::SeqCst) {
            match &*self.shared.abort_reason.lock() {
                Some(AbortReason::Deadlock(_)) => std::panic::panic_any(DeadlockAbort),
                Some(AbortReason::RankFailure(_)) => std::panic::panic_any(StalledOnCrash),
                None => std::panic::panic_any(PeerAborted),
            }
        }
    }

    /// Park until every key in `keys` has a queue head; return the head
    /// arrivals in `keys` order. Blocks the OS thread only — the virtual
    /// clock is untouched. All blocking receives funnel through here so the
    /// deadlock detector sees every parked rank.
    ///
    /// A *per-call* deadline (`call == true`) fails fast: a missing head
    /// whose source rank has crashed or finished (and whose queue is empty)
    /// is provably never coming, so the wait returns
    /// [`RecvError::TimedOut`] immediately — the caller fails over and the
    /// outcome is virtually deterministic (the clock jumps to the fixed
    /// deadline either way). A *machine-wide* deadline never self-resolves:
    /// the rank parks and the deadlock scanner decides at quiescence, when
    /// every parked clock is frozen — otherwise the abort would race
    /// still-running peers and the failed attempt's clocks (and makespan)
    /// would depend on host timing. A rank elected by the scanner returns
    /// [`RecvError::TimedOut`] on its smallest missing `(src, tag)` key.
    fn wait_heads(
        &self,
        keys: &[(usize, u64)],
        deadline: Option<f64>,
        call: bool,
    ) -> Result<Vec<f64>, RecvError> {
        for &(src, _) in keys {
            assert!(src < self.nranks, "recv from rank {src} of {}", self.nranks);
        }
        let mbox = &self.shared.boxes[self.rank];
        loop {
            let missing: Vec<(usize, u64)> = {
                let q = mbox.queues.lock();
                let missing: Vec<(usize, u64)> = keys
                    .iter()
                    .copied()
                    .filter(|k| q.head_arrival(k).is_none())
                    .collect();
                if missing.is_empty() {
                    return Ok(keys
                        .iter()
                        .map(|k| q.head_arrival(k).expect("head present"))
                        .collect());
                }
                missing
            };
            self.check_failed();
            if let Some(d) = deadline {
                let elected = {
                    let mut w = self.shared.waiting.lock();
                    let e = w.elected == Some(self.rank);
                    if e {
                        w.elected = None;
                    }
                    e
                };
                if elected {
                    let &(src, tag) = missing.iter().min().expect("elected with no missing key");
                    return Err(RecvError::TimedOut {
                        src,
                        tag,
                        waited: d - self.clock,
                    });
                }
            }
            if let (Some(d), true) = (deadline, call) {
                // Read the gone flags first: a post that happened before
                // the source stopped is visible once the flag is.
                let gone: Vec<bool> = {
                    let w = self.shared.waiting.lock();
                    missing
                        .iter()
                        .map(|&(s, _)| w.done[s] || w.crashed[s])
                        .collect()
                };
                let q = mbox.queues.lock();
                for (k, &g) in missing.iter().zip(&gone) {
                    if g && q.head_arrival(k).is_none() {
                        return Err(RecvError::TimedOut {
                            src: k.0,
                            tag: k.1,
                            waited: d - self.clock,
                        });
                    }
                }
            }
            self.register_blocked(&missing, deadline, call);
            {
                let mut q = mbox.queues.lock();
                let still_missing = missing.iter().any(|k| q.head_arrival(k).is_none());
                if still_missing && !self.shared.failed.load(Ordering::SeqCst) {
                    mbox.signal.wait_for(&mut q, Duration::from_millis(50));
                }
            }
            self.unregister_blocked();
            self.check_failed();
        }
    }

    /// Record this rank as parked on `missing`. The rank that completes the
    /// "everyone is finished or parked" condition verifies the deadlock: no
    /// registered key anywhere has a posted message. Between registering
    /// and unregistering a rank sends nothing, so if the scan finds no
    /// satisfying message the blockage cannot resolve — fail the run with a
    /// per-rank diagnostic instead of hanging.
    fn register_blocked(&self, missing: &[(usize, u64)], deadline: Option<f64>, call: bool) {
        let mut w = self.shared.waiting.lock();
        w.blocked[self.rank] = Some(Blocked {
            keys: missing.to_vec(),
            deadline,
            call,
        });
        self.shared.deadlock_scan(&mut w);
    }

    fn unregister_blocked(&self) {
        self.shared.waiting.lock().blocked[self.rank] = None;
    }

    /// Snapshot of this rank's statistics.
    pub fn stats(&self) -> RankStats {
        let queue_peak = self.shared.boxes[self.rank].queues.lock().depth_peak as u64;
        RankStats {
            clock_s: self.clock,
            compute_s: self.compute_s,
            comm_s: self.comm_s,
            comm_hidden_s: self.comm_hidden_s,
            queue_peak,
            flops: self.flops,
            bytes_sent: self.bytes_sent,
            msgs_sent: self.msgs_sent,
            bytes_recv: self.bytes_recv,
            msgs_recv: self.msgs_recv,
            mem_peak: self.mem_peak,
        }
    }

    /// Snapshot of this rank's communication-matrix row (`None` unless the
    /// machine installed [`Machine::comm_matrix`]). Programs snapshot it
    /// alongside [`Rank::stats`] to exclude epilogue traffic (e.g. factor
    /// gather) from a report while the machine-level matrix keeps counting.
    pub fn comm_row(&self) -> Option<CommRow> {
        self.comm.as_ref().map(|(_, row)| row.clone())
    }
}

/// Report of a completed SPMD run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank statistics.
    pub stats: Vec<RankStats>,
    /// Per-rank recorded events (empty unless [`Machine::trace_events`]).
    pub events: Vec<Vec<SpanEvent>>,
    /// Simulated makespan: the maximum final virtual clock (seconds).
    pub makespan_s: f64,
    /// Injected-fault activity (all zero without a [`FaultPlan`]).
    pub fault_counts: FaultCounts,
    /// Full src×dst×class traffic matrix (`None` unless
    /// [`Machine::comm_matrix`] installed a tag classifier).
    pub comm: Option<CommMatrix>,
}

impl<R> RunReport<R> {
    /// Total flops across ranks.
    pub fn total_flops(&self) -> f64 {
        self.stats.iter().map(|s| s.flops).sum()
    }

    /// Total payload bytes sent across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total messages sent across ranks.
    pub fn total_msgs(&self) -> u64 {
        self.stats.iter().map(|s| s.msgs_sent).sum()
    }

    /// Modelled aggregate Gflop/s achieved over the makespan.
    pub fn gflops(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.total_flops() / self.makespan_s / 1e9
        } else {
            0.0
        }
    }

    /// Maximum per-rank peak tracked memory (bytes).
    pub fn max_mem_peak(&self) -> u64 {
        self.stats.iter().map(|s| s.mem_peak).max().unwrap_or(0)
    }
}

/// Structured outcome of a [`Machine::run_verdict`] run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunVerdict {
    /// Every rank ran its program to completion.
    Completed,
    /// One or more ranks crashed under the fault plan; surviving ranks
    /// either completed or were unwound once provably stuck on the dead
    /// ranks' undelivered sends. `detail` has a per-rank diagnostic.
    RankFailed {
        /// Crashed ranks, ascending.
        ranks: Vec<usize>,
        /// Per-rank diagnostic text.
        detail: String,
    },
    /// A blocking receive exceeded the machine-wide receive deadline (and
    /// no rank crashed). Reported for the lowest-numbered timed-out rank.
    TimedOut {
        /// The rank whose receive timed out.
        rank: usize,
        /// Source rank it was matching.
        src: usize,
        /// Message tag it was matching.
        tag: u64,
        /// Virtual seconds it waited.
        waited_s: f64,
    },
    /// Protocol deadlock: every rank finished or blocked with no matching
    /// message in flight and no crashed rank to blame.
    Deadlocked {
        /// Per-rank diagnostic text.
        detail: String,
    },
}

impl RunVerdict {
    /// True for [`RunVerdict::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RunVerdict::Completed)
    }
}

/// Report of a fault-aware run ([`Machine::run_verdict`]): per-rank results
/// where available, statistics for every rank (including crashed ones, up
/// to the crash point), and the structured verdict.
#[derive(Debug)]
pub struct VerdictReport<R> {
    /// The structured outcome.
    pub verdict: RunVerdict,
    /// Per-rank return values; `None` for ranks that crashed, timed out or
    /// were unwound.
    pub results: Vec<Option<R>>,
    /// Per-rank statistics (crashed ranks report up to the crash point).
    pub stats: Vec<RankStats>,
    /// Per-rank recorded events (empty unless [`Machine::trace_events`]).
    pub events: Vec<Vec<SpanEvent>>,
    /// Injected-fault activity over the run.
    pub fault_counts: FaultCounts,
    /// Maximum final virtual clock across ranks (seconds).
    pub makespan_s: f64,
    /// Full src×dst×class traffic matrix (`None` unless
    /// [`Machine::comm_matrix`] installed a tag classifier).
    pub comm: Option<CommMatrix>,
}

/// A simulated message-passing machine with a fixed rank count and cost
/// model.
pub struct Machine {
    nranks: usize,
    model: CostModel,
    trace: bool,
    plan: FaultPlan,
    recv_timeout: Option<f64>,
    comm: Option<Arc<CommSpec>>,
}

/// How one rank's program ended.
enum RankEnd<R, E> {
    Done(R),
    Errored(E),
    Crashed {
        at_s: f64,
    },
    TimedOut {
        src: usize,
        tag: u64,
        waited_s: f64,
    },
    /// Unwound by a peer abort, deadlock, or crash-induced stall.
    Stalled,
}

struct RankSlot<R, E> {
    end: RankEnd<R, E>,
    stats: RankStats,
    events: Vec<SpanEvent>,
    comm: Option<CommRow>,
}

/// Everything `run_inner` learns about a run, before any policy (panic
/// vs. error vs. verdict) is applied.
struct InnerRun<R, E> {
    slots: Vec<RankSlot<R, E>>,
    /// First real (non-sentinel) panic, to be propagated.
    panic: Option<Box<dyn Any + Send>>,
    abort: Option<AbortReason>,
    counts: FaultCounts,
    comm: Option<CommMatrix>,
}

impl Machine {
    /// Create a machine with `nranks` ranks.
    pub fn new(nranks: usize, model: CostModel) -> Self {
        assert!(nranks > 0);
        Machine {
            nranks,
            model,
            trace: false,
            plan: FaultPlan::new(),
            recv_timeout: None,
            comm: None,
        }
    }

    /// Account every send into a src×dst traffic matrix broken down by tag
    /// class: `classify` maps a message tag to an index into `class_names`.
    /// Off by default. Recording is pure counter arithmetic on the sending
    /// rank — it never touches virtual clocks, so enabling the matrix
    /// changes no result, clock, or makespan bit (tested). The assembled
    /// matrix comes back in [`RunReport::comm`] / [`VerdictReport::comm`].
    pub fn comm_matrix<F>(mut self, class_names: &[&str], classify: F) -> Self
    where
        F: Fn(u64) -> usize + Send + Sync + 'static,
    {
        assert!(!class_names.is_empty(), "comm_matrix needs >= 1 class");
        self.comm = Some(Arc::new(CommSpec {
            names: class_names.iter().map(|s| s.to_string()).collect(),
            classify: Box::new(classify),
        }));
        self
    }

    /// Record communication events (and [`Rank::compute_as`] spans) on
    /// every rank; they come back in [`RunReport::events`]. Off by default
    /// — recording allocates per event but never perturbs virtual clocks.
    pub fn trace_events(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Apply a [`FaultPlan`] to every run on this machine. Faults fire at
    /// deterministic virtual points, so repeated runs reproduce bitwise.
    /// Use [`Machine::run_verdict`] to observe the structured outcome;
    /// under `run`/`run_result` an injected crash or timeout panics with a
    /// diagnostic message.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Set a machine-wide receive deadline (virtual seconds): every
    /// blocking receive/wait that cannot be satisfied within it — the
    /// matching head arrives later, or its source crashed/finished without
    /// sending — aborts the run with a [`RunVerdict::TimedOut`] instead of
    /// waiting for the deadlock scanner. Derive a safe value from the cost
    /// model with [`CostModel::recv_timeout_for`]; it must dominate every
    /// legitimate wait (load imbalance included) or healthy runs will be
    /// misreported as timed out.
    pub fn recv_timeout(mut self, timeout_s: f64) -> Self {
        assert!(timeout_s > 0.0, "recv_timeout must be positive");
        self.recv_timeout = Some(timeout_s);
        self
    }

    /// Run an SPMD program: `f` is executed once per rank, each on its own
    /// OS thread. Panics in any rank abort the whole run (peers unblock and
    /// re-panic) and the panic is propagated to the caller.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        match self.run_result::<R, std::convert::Infallible, _>(|rank| Ok(f(rank))) {
            Ok(rep) => rep,
            Err(e) => match e {},
        }
    }

    /// Run an SPMD program whose ranks can fail with a typed error. When a
    /// rank returns `Err`, peers blocked on its messages are unwound
    /// internally (their partial results are discarded) and the
    /// lowest-numbered rank's error is returned. Real panics still
    /// propagate as panics, and a protocol deadlock panics with its
    /// diagnostic string. Injected crashes and timeouts (only possible with
    /// a [`FaultPlan`] or [`Machine::recv_timeout`]) also panic — use
    /// [`Machine::run_verdict`] for fault-injection runs.
    pub fn run_result<R, E, F>(&self, f: F) -> Result<RunReport<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(&mut Rank) -> Result<R, E> + Send + Sync,
    {
        let inner = self.run_inner(f);
        if let Some(p) = inner.panic {
            std::panic::resume_unwind(p);
        }
        if let Some(AbortReason::Deadlock(diag)) = inner.abort {
            // Legacy contract: deadlocks abort with the diagnostic string
            // as the panic payload.
            std::panic::panic_any(diag);
        }
        let mut out = Vec::with_capacity(self.nranks);
        let mut stats = Vec::with_capacity(self.nranks);
        let mut events = Vec::with_capacity(self.nranks);
        let mut first_err: Option<E> = None;
        let mut fault_note: Option<String> = None;
        for (r, slot) in inner.slots.into_iter().enumerate() {
            match slot.end {
                RankEnd::Done(v) => {
                    out.push(v);
                    stats.push(slot.stats);
                    events.push(slot.events);
                }
                RankEnd::Errored(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                RankEnd::Crashed { at_s } => {
                    fault_note.get_or_insert(format!(
                        "rank {r} crashed at t={at_s:.6}s under the injected fault plan"
                    ));
                }
                RankEnd::TimedOut { src, tag, waited_s } => {
                    fault_note.get_or_insert(format!(
                        "rank {r} timed out after {waited_s:.6}s waiting on (src={src}, tag={tag})"
                    ));
                }
                RankEnd::Stalled => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if let Some(note) = fault_note {
            panic!("mpsim run aborted by injected fault: {note}; use Machine::run_verdict for fault-injection runs");
        }
        assert_eq!(
            out.len(),
            self.nranks,
            "rank finished without result despite no panic or error"
        );
        let makespan = stats.iter().fold(0.0f64, |m, s| m.max(s.clock_s));
        Ok(RunReport {
            results: out,
            stats,
            events,
            makespan_s: makespan,
            fault_counts: inner.counts,
            comm: inner.comm,
        })
    }

    /// Run an SPMD program under the machine's fault plan and receive
    /// deadline, and report the structured [`RunVerdict`] instead of
    /// panicking: injected crashes become [`RunVerdict::RankFailed`],
    /// exceeded deadlines [`RunVerdict::TimedOut`], unresolvable blockage
    /// with no crashed rank [`RunVerdict::Deadlocked`]. Real panics in the
    /// program still propagate.
    pub fn run_verdict<R, F>(&self, f: F) -> VerdictReport<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        let inner = self.run_inner::<R, std::convert::Infallible, _>(|rank| Ok(f(rank)));
        if let Some(p) = inner.panic {
            std::panic::resume_unwind(p);
        }
        let mut results = Vec::with_capacity(self.nranks);
        let mut stats = Vec::with_capacity(self.nranks);
        let mut events = Vec::with_capacity(self.nranks);
        let mut crashed: Vec<usize> = Vec::new();
        let mut crash_detail = String::new();
        let mut timeout: Option<(usize, usize, u64, f64)> = None;
        for (r, slot) in inner.slots.into_iter().enumerate() {
            stats.push(slot.stats);
            events.push(slot.events);
            match slot.end {
                RankEnd::Done(v) => results.push(Some(v)),
                RankEnd::Errored(e) => match e {},
                RankEnd::Crashed { at_s } => {
                    use std::fmt::Write;
                    crashed.push(r);
                    let _ = writeln!(crash_detail, "rank {r} crashed at t={at_s:.6}s");
                    results.push(None);
                }
                RankEnd::TimedOut { src, tag, waited_s } => {
                    if timeout.is_none() {
                        timeout = Some((r, src, tag, waited_s));
                    }
                    results.push(None);
                }
                RankEnd::Stalled => results.push(None),
            }
        }
        let verdict = if !crashed.is_empty() {
            if let Some(AbortReason::RankFailure(diag)) = &inner.abort {
                crash_detail.push_str(diag);
            }
            RunVerdict::RankFailed {
                ranks: crashed,
                detail: crash_detail,
            }
        } else if let Some((rank, src, tag, waited_s)) = timeout {
            RunVerdict::TimedOut {
                rank,
                src,
                tag,
                waited_s,
            }
        } else if let Some(AbortReason::Deadlock(detail)) = inner.abort {
            RunVerdict::Deadlocked { detail }
        } else {
            RunVerdict::Completed
        };
        let makespan = stats.iter().fold(0.0f64, |m, s| m.max(s.clock_s));
        VerdictReport {
            verdict,
            results,
            stats,
            events,
            fault_counts: inner.counts,
            makespan_s: makespan,
            comm: inner.comm,
        }
    }

    /// The shared runner: spawn one OS thread per rank, classify how each
    /// rank ended, and collect statistics/events for every rank — policy
    /// (panic, `Err`, or verdict) is applied by the public entry points.
    fn run_inner<R, E, F>(&self, f: F) -> InnerRun<R, E>
    where
        R: Send,
        E: Send,
        F: Fn(&mut Rank) -> Result<R, E> + Send + Sync,
    {
        install_sentinel_panic_filter();
        let shared = Arc::new(Shared {
            boxes: (0..self.nranks).map(|_| Mailbox::default()).collect(),
            failed: AtomicBool::new(false),
            waiting: Mutex::new(WaitState {
                blocked: (0..self.nranks).map(|_| None).collect(),
                done: vec![false; self.nranks],
                crashed: vec![false; self.nranks],
                elected: None,
            }),
            abort_reason: Mutex::new(None),
            faults: FaultTallies::default(),
            model: self.model,
        });
        let abort = |shared: &Shared| {
            shared.failed.store(true, Ordering::SeqCst);
            for b in &shared.boxes {
                b.signal.notify_all();
            }
        };
        let mut slots: Vec<Option<RankSlot<R, E>>> = (0..self.nranks).map(|_| None).collect();
        let fref = &f;
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = slots
                .iter_mut()
                .enumerate()
                .map(|(r, slot)| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("mpsim-rank-{r}"))
                        .stack_size(4 << 20)
                        .spawn_scoped(scope, move || {
                            let mut rank = Rank {
                                rank: r,
                                nranks: shared.boxes.len(),
                                shared: Arc::clone(&shared),
                                clock: 0.0,
                                compute_s: 0.0,
                                comm_s: 0.0,
                                comm_hidden_s: 0.0,
                                flops: 0.0,
                                bytes_sent: 0,
                                msgs_sent: 0,
                                bytes_recv: 0,
                                msgs_recv: 0,
                                mem_cur: 0,
                                mem_peak: 0,
                                comm: self.comm.as_ref().map(|s| {
                                    (Arc::clone(s), CommRow::new(self.nranks, s.names.len()))
                                }),
                                trace: self.trace,
                                events: RefCell::new(Vec::new()),
                                faults: RankFaults::compile(&self.plan, r, &self.model),
                                recv_timeout: self.recv_timeout,
                            };
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    fref(&mut rank)
                                }));
                            let end = match out {
                                Ok(Ok(v)) => {
                                    // This rank will never send again; peers
                                    // blocked on it may now be provably
                                    // deadlocked.
                                    shared.mark_done(r);
                                    RankEnd::Done(v)
                                }
                                Ok(Err(e)) => {
                                    abort(&shared);
                                    shared.mark_done(r);
                                    RankEnd::Errored(e)
                                }
                                Err(p) => {
                                    if let Some(c) = p.downcast_ref::<RankCrashed>() {
                                        // The crash registry was updated in
                                        // `crash_now`; peers keep running
                                        // (or time out / stall on us).
                                        RankEnd::Crashed { at_s: c.at_s }
                                    } else if let Some(t) = p.downcast_ref::<TimeoutAbort>() {
                                        abort(&shared);
                                        shared.mark_done(r);
                                        RankEnd::TimedOut {
                                            src: t.src,
                                            tag: t.tag,
                                            waited_s: t.waited_s,
                                        }
                                    } else if p.is::<PeerAborted>()
                                        || p.is::<DeadlockAbort>()
                                        || p.is::<StalledOnCrash>()
                                    {
                                        RankEnd::Stalled
                                    } else {
                                        abort(&shared);
                                        shared.mark_done(r);
                                        return Err(p);
                                    }
                                }
                            };
                            *slot = Some(RankSlot {
                                end,
                                stats: rank.stats(),
                                events: rank.take_events(),
                                comm: rank.comm.take().map(|(_, row)| row),
                            });
                            Ok(())
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(p)) | Err(p) => {
                        if p.downcast_ref::<PeerAborted>().is_none() {
                            first_panic.get_or_insert(p);
                        }
                    }
                }
            }
        });
        let abort_reason = shared.abort_reason.lock().clone();
        let counts = shared.faults.snapshot();
        let slots: Vec<RankSlot<R, E>> = slots
            .into_iter()
            .map(|s| {
                s.unwrap_or(RankSlot {
                    end: RankEnd::Stalled,
                    stats: RankStats::default(),
                    events: Vec::new(),
                    comm: None,
                })
            })
            .collect();
        let comm = self.comm.as_ref().map(|spec| {
            let mut m = CommMatrix::new(self.nranks, spec.names.clone());
            let nc = spec.names.len();
            for (src, slot) in slots.iter().enumerate() {
                if let Some(row) = &slot.comm {
                    let base = src * self.nranks * nc;
                    m.bytes[base..base + row.bytes.len()].copy_from_slice(&row.bytes);
                    m.msgs[base..base + row.msgs.len()].copy_from_slice(&row.msgs);
                }
            }
            // Reconciliation (debug builds): the matrix must agree with the
            // per-rank counters exactly — row sums with what each rank sent,
            // column sums with what each rank drained plus what is still
            // queued at its mailbox (crashed receivers and fault-injected
            // duplicates leave messages behind). Skipped when a real panic
            // lost a rank's row — its sends were posted but not captured.
            if cfg!(debug_assertions) && first_panic.is_none() {
                for (r, slot) in slots.iter().enumerate() {
                    debug_assert_eq!(
                        m.sent_bytes(r),
                        slot.stats.bytes_sent,
                        "rank {r}: comm-matrix row bytes disagree with bytes_sent"
                    );
                    debug_assert_eq!(
                        m.sent_msgs(r),
                        slot.stats.msgs_sent,
                        "rank {r}: comm-matrix row msgs disagree with msgs_sent"
                    );
                    let q = shared.boxes[r].queues.lock();
                    // lint:allow(R2) commutative u64 sums over undrained queues — order-free, debug accounting only
                    let leftover_bytes: u64 = q
                        .map
                        .values()
                        .flat_map(|d| d.iter())
                        .map(|msg| msg.bytes as u64)
                        .sum();
                    // lint:allow(R2) commutative u64 sum over undrained queues — order-free, debug accounting only
                    let leftover_msgs: u64 = q.map.values().map(|d| d.len() as u64).sum();
                    debug_assert_eq!(
                        m.posted_bytes(r),
                        slot.stats.bytes_recv + leftover_bytes,
                        "rank {r}: comm-matrix column bytes disagree with bytes_recv + queued"
                    );
                    debug_assert_eq!(
                        m.posted_msgs(r),
                        slot.stats.msgs_recv + leftover_msgs,
                        "rank {r}: comm-matrix column msgs disagree with msgs_recv + queued"
                    );
                }
            }
            m
        });
        InnerRun {
            slots,
            panic: first_panic,
            abort: abort_reason,
            counts,
            comm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::CostModel;

    #[test]
    fn single_rank_runs() {
        let r = Machine::new(1, CostModel::zero_cost()).run(|rank| {
            rank.compute(1000.0);
            rank.rank() * 10
        });
        assert_eq!(r.results, vec![0]);
        assert_eq!(r.stats[0].flops, 1000.0);
    }

    #[test]
    fn ping_pong_values_and_clock() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 0.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, 42u64); // 8 bytes: occupancy 1 + 4 = 5
                let x: u64 = rank.recv(1, 2);
                x
            } else {
                let x: u64 = rank.recv(0, 1); // arrival at 5 -> clock 5
                rank.send(0, 2, x + 1); // clock 10
                x + 1
            }
        });
        assert_eq!(r.results, vec![43, 43]);
        // Rank 1 finishes at 10; rank 0 waits for arrival at 10.
        assert_eq!(r.stats[1].clock_s, 10.0);
        assert_eq!(r.stats[0].clock_s, 10.0);
        assert_eq!(r.makespan_s, 10.0);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                for i in 0..10u64 {
                    rank.send(1, 3, i);
                }
                0
            } else {
                let mut got = Vec::new();
                for _ in 0..10 {
                    got.push(rank.recv::<u64>(0, 3));
                }
                assert_eq!(got, (0..10).collect::<Vec<_>>());
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    fn tags_demultiplex() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 7, 70u64);
                rank.send(1, 8, 80u64);
                0
            } else {
                // Receive in the opposite order of sending.
                let b: u64 = rank.recv(0, 8);
                let a: u64 = rank.recv(0, 7);
                assert_eq!((a, b), (70, 80));
                1
            }
        });
        assert_eq!(r.results.len(), 2);
    }

    #[test]
    fn vectors_round_trip() {
        let r = Machine::new(2, CostModel::bluegene_p()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 0, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let v: Vec<f64> = rank.recv(0, 0);
                v.iter().sum::<f64>()
            }
        });
        assert_eq!(r.results[1], 6.0);
        // 24 payload bytes tracked.
        assert_eq!(r.total_bytes(), 24);
        assert_eq!(r.total_msgs(), 1);
    }

    #[test]
    fn deterministic_timing_across_runs() {
        let run = || {
            Machine::new(4, CostModel::bluegene_p()).run(|rank| {
                let p = rank.nranks();
                // All-to-all ping with compute in between.
                for d in 0..p {
                    if d != rank.rank() {
                        rank.send(d, 5, vec![rank.rank() as f64; 100]);
                    }
                }
                rank.compute(1e6);
                let mut acc = 0.0;
                for s in 0..p {
                    if s != rank.rank() {
                        let v: Vec<f64> = rank.recv(s, 5);
                        acc += v[0];
                    }
                }
                acc
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        for (x, y) in a.stats.iter().zip(&b.stats) {
            assert_eq!(x.clock_s, y.clock_s);
        }
    }

    #[test]
    fn compute_and_memory_tracking() {
        let r = Machine::new(1, CostModel::bluegene_p()).run(|rank| {
            rank.alloc(1000);
            rank.alloc(500);
            rank.free(1000);
            rank.alloc(200);
            rank.compute(3.4e9); // 1 second at 3.4 Gflop/s
            rank.stats().mem_peak
        });
        assert_eq!(r.results[0], 1500);
        assert!((r.stats[0].clock_s - 1.0).abs() < 1e-9);
        assert!((r.stats[0].compute_s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate_and_unblock_peers() {
        Machine::new(3, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                panic!("boom");
            }
            // Peers block on a message that will never come; the failure
            // flag must wake and abort them rather than hang the test.
            let _: u64 = rank.recv(0, 9);
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_is_diagnosed() {
        Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 0, 1u64);
            } else {
                let _: Vec<f64> = rank.recv(0, 0);
            }
        });
    }

    #[test]
    fn gflops_reporting() {
        let r = Machine::new(2, CostModel::bluegene_p()).run(|rank| {
            rank.compute(3.4e9);
            rank.rank()
        });
        // 2 ranks x 3.4 Gflop in 1 simulated second = 6.8 Gflop/s.
        assert!((r.gflops() - 6.8).abs() < 1e-6);
    }

    #[test]
    fn isend_hides_transfer_under_compute() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                // 8 bytes: α = 1 occupies the sender, β·8 = 4 is pipelined.
                let req = rank.isend(1, 1, 42u64);
                assert_eq!(rank.clock(), 1.0);
                assert_eq!(req.complete_at, 5.0);
                rank.compute(6.0); // clock 7: transfer fully hidden
                rank.wait_send(req); // already past complete_at: no-op
                assert_eq!(rank.clock(), 7.0);
            } else {
                let x: u64 = rank.recv(0, 1);
                assert_eq!(x, 42);
                // Arrival = sender clock after α (1) + transfer (4).
                assert_eq!(rank.clock(), 5.0);
            }
            rank.rank()
        });
        assert_eq!(r.stats[0].comm_hidden_s, 4.0);
        assert_eq!(r.stats[0].comm_s, 1.0);
        // Blocking send of the same message would have finished at 11.
        assert_eq!(r.stats[0].clock_s, 7.0);
    }

    #[test]
    fn wait_send_exposes_unfinished_transfer() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                let req = rank.isend(1, 1, 7u64); // clock 1, complete at 5
                rank.compute(1.0); // clock 2
                rank.wait_send(req); // exposes 3 s of the 4 s transfer
                assert_eq!(rank.clock(), 5.0);
            } else {
                let _: u64 = rank.recv(0, 1);
            }
            0
        });
        assert_eq!(r.stats[0].comm_hidden_s, 1.0);
        assert_eq!(r.stats[0].comm_s, 1.0 + 3.0);
    }

    #[test]
    fn try_recv_decides_by_virtual_time_only() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 4, 9u64); // arrival at virtual t = 1
                0
            } else {
                // Even though the message is (or will be) physically posted,
                // at virtual t = 0.5 it has not arrived yet.
                rank.advance(0.5);
                assert!(rank.try_recv::<u64>(0, 4).is_none());
                assert_eq!(rank.clock(), 0.5); // try_recv never advances time
                rank.advance(1.0);
                let got = rank.try_recv::<u64>(0, 4);
                assert_eq!(got, Some(9));
                assert_eq!(rank.clock(), 1.5);
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    fn wait_any_picks_earliest_virtual_arrival() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 1.0,
        };
        let r = Machine::new(3, m).run(|rank| {
            match rank.rank() {
                0 => {
                    // Arrives at t = 1.
                    rank.send(2, 5, 100u64);
                    0
                }
                1 => {
                    // Same tag, later virtual arrival (t = 4) — but often
                    // physically posted first.
                    rank.compute(3.0);
                    rank.send(2, 5, 200u64);
                    0
                }
                _ => {
                    let keys = [(1usize, 5u64), (0usize, 5u64)];
                    let (i1, v1): (usize, u64) = rank.wait_any(&keys);
                    assert_eq!((i1, v1), (1, 100)); // rank 0's message first
                                                    // Only one pending key remains: drop the consumed one.
                    let (i2, v2): (usize, u64) = rank.wait_any(&keys[..1]);
                    assert_eq!((i2, v2), (0, 200));
                    assert_eq!(rank.clock(), 4.0);
                    1
                }
            }
        });
        assert_eq!(r.results, vec![0, 0, 1]);
    }

    #[test]
    fn probe_reports_arrival_without_consuming() {
        let m = CostModel {
            alpha_s: 2.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 0.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 6, 5u64);
                0
            } else {
                let t = rank.probe(0, 6);
                assert_eq!(t, 2.0);
                assert_eq!(rank.clock(), 0.0); // probe does not advance time
                let x: u64 = rank.recv(0, 6);
                assert_eq!(x, 5);
                assert_eq!(rank.clock(), 2.0);
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_with_diagnostic() {
        // Both ranks receive from each other without anyone sending: a
        // protocol bug that used to hang forever in 50 ms condvar waits.
        Machine::new(2, CostModel::zero_cost()).run(|rank| {
            let peer = 1 - rank.rank();
            let _: u64 = rank.recv(peer, 42);
        });
    }

    #[test]
    fn deadlock_diagnostic_lists_pending_keys() {
        let caught = std::panic::catch_unwind(|| {
            Machine::new(3, CostModel::zero_cost()).run(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 7, 1u64);
                }
                // Rank 1 consumes its message then joins the others in
                // waiting for one that never comes.
                if rank.rank() == 1 {
                    let _: u64 = rank.recv(0, 7);
                }
                let _: u64 = rank.recv((rank.rank() + 1) % 3, 99);
            });
        });
        let payload = caught.expect_err("deadlock must abort the run");
        let msg = payload
            .downcast_ref::<String>()
            .expect("diagnostic is a string");
        assert!(msg.contains("deadlock"), "{msg}");
        for r in 0..3 {
            assert!(msg.contains(&format!("rank {r} waiting on")), "{msg}");
        }
        assert!(msg.contains("tag=99"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected_when_sender_already_finished() {
        // Rank 0 exits without sending; rank 1 waits on it forever. Not all
        // ranks are *blocked*, but the blockage still can never resolve.
        Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 1 {
                let _: u64 = rank.recv(0, 11);
            }
        });
    }

    #[test]
    fn run_result_propagates_error_and_unblocks_peers() {
        let r: Result<RunReport<u64>, &str> =
            Machine::new(3, CostModel::zero_cost()).run_result(|rank| {
                if rank.rank() == 1 {
                    return Err("bad pivot");
                }
                // Peers block on rank 1 forever; the error must unwind them.
                let _: u64 = rank.recv(1, 3);
                Ok(0)
            });
        assert_eq!(r.unwrap_err(), "bad pivot");
    }

    #[test]
    fn run_result_returns_lowest_rank_error() {
        let r: Result<RunReport<u64>, usize> =
            Machine::new(4, CostModel::zero_cost()).run_result(|rank| {
                if rank.rank() >= 2 {
                    return Err(rank.rank());
                }
                let _: u64 = rank.recv(3, 1);
                Ok(0)
            });
        assert_eq!(r.unwrap_err(), 2);
    }

    #[test]
    fn run_result_ok_matches_run() {
        let r = Machine::new(2, CostModel::bluegene_p())
            .run_result::<_, (), _>(|rank| {
                rank.compute(3.4e9);
                Ok(rank.rank())
            })
            .unwrap();
        assert_eq!(r.results, vec![0, 1]);
        assert!((r.gflops() - 6.8).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "boom in result mode")]
    fn run_result_still_propagates_real_panics() {
        let _ = Machine::new(2, CostModel::zero_cost()).run_result::<u64, (), _>(|rank| {
            if rank.rank() == 0 {
                panic!("boom in result mode");
            }
            let _: u64 = rank.recv(0, 9);
            Ok(0)
        });
    }

    #[test]
    fn events_off_by_default_and_never_perturb_clocks() {
        let program = |rank: &mut Rank| {
            if rank.rank() == 0 {
                rank.compute_as(1e6, Phase::Panel, Some(3));
                rank.send(1, 1, vec![1.0f64; 64]);
            } else {
                let _: Vec<f64> = rank.recv(0, 1);
            }
            rank.clock()
        };
        let plain = Machine::new(2, CostModel::bluegene_p()).run(program);
        assert!(plain.events.iter().all(Vec::is_empty));
        let traced = Machine::new(2, CostModel::bluegene_p())
            .trace_events(true)
            .run(program);
        // Bitwise identical virtual time with and without tracing.
        assert_eq!(plain.results, traced.results);
        assert!(!traced.events[0].is_empty());
    }

    #[test]
    fn traced_run_records_compute_comm_and_wait_spans() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).trace_events(true).run(|rank| {
            if rank.rank() == 0 {
                rank.compute_as(2.0, Phase::Panel, Some(5)); // [0, 2]
                rank.send(1, 1, 42u64); // comm [2, 7]: α + 8·β
                let req = rank.isend(1, 2, 7u64); // comm [7, 8]: α only
                rank.wait_send(req); // wait [8, 12]: exposed transfer
            } else {
                let t = rank.probe(0, 1); // marker at arrival 7
                assert_eq!(t, 7.0);
                let _: u64 = rank.recv(0, 1); // wait [0, 7]
                let _: (usize, u64) = rank.wait_any(&[(0, 2)]); // wait [7, 12]
            }
            0
        });
        let ev0 = &r.events[0];
        let kinds: Vec<(Phase, f64, f64)> =
            ev0.iter().map(|e| (e.phase, e.start_s, e.dur_s)).collect();
        assert_eq!(
            kinds,
            vec![
                (Phase::Panel, 0.0, 2.0),
                (Phase::Comm, 2.0, 5.0),
                (Phase::Comm, 7.0, 1.0),
                (Phase::Wait, 8.0, 4.0),
            ]
        );
        assert_eq!(ev0[0].supernode, Some(5));
        assert!(ev0.iter().all(|e| e.who == 0));
        let ev1 = &r.events[1];
        // Probe marker (zero duration) plus the two real waits.
        assert!(ev1.contains(&SpanEvent {
            phase: Phase::Wait,
            supernode: None,
            who: 1,
            start_s: 7.0,
            dur_s: 0.0,
        }));
        let waits: Vec<(f64, f64)> = ev1
            .iter()
            .filter(|e| e.phase == Phase::Wait && e.dur_s > 0.0)
            .map(|e| (e.start_s, e.dur_s))
            .collect();
        assert_eq!(waits, vec![(0.0, 7.0), (7.0, 5.0)]);
    }

    #[test]
    fn set_trace_events_excludes_epilogue() {
        let r = Machine::new(2, CostModel::bluegene_p())
            .trace_events(true)
            .run(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 1, 1u64);
                    rank.set_trace_events(false);
                    rank.send(1, 2, 2u64); // epilogue: not recorded
                } else {
                    let _: u64 = rank.recv(0, 1);
                    let _: u64 = rank.recv(0, 2);
                }
                0
            });
        let comm0 = r.events[0]
            .iter()
            .filter(|e| e.phase == Phase::Comm)
            .count();
        assert_eq!(comm0, 1);
    }

    #[test]
    fn queue_peak_is_tracked() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                for i in 0..5u64 {
                    rank.send(1, 3, i);
                }
                // Handshake so rank 1 drains only after all 5 are queued.
                rank.send(1, 4, 1u64);
                0
            } else {
                let _: u64 = rank.recv(0, 4);
                for _ in 0..5 {
                    let _: u64 = rank.recv(0, 3);
                }
                1
            }
        });
        assert!(r.stats[1].queue_peak >= 5, "peak {}", r.stats[1].queue_peak);
    }

    // ---- fault injection ----

    #[test]
    fn clean_run_verdict_is_completed() {
        let v = Machine::new(2, CostModel::zero_cost()).run_verdict(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, 7u64);
            } else {
                let got: u64 = rank.recv(0, 1);
                assert_eq!(got, 7);
            }
            rank.rank()
        });
        assert!(v.verdict.is_completed());
        assert_eq!(v.results, vec![Some(0), Some(1)]);
        assert!(v.fault_counts.is_zero());
    }

    #[test]
    fn crash_at_virtual_time_yields_rank_failed() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 1.0,
        };
        let v = Machine::new(2, m)
            .fault_plan(FaultPlan::new().crash_at(1, 5.0))
            .run_verdict(|rank| {
                if rank.rank() == 1 {
                    rank.compute(10.0); // crashes at the boundary, clock >= 5
                    rank.send(0, 1, 1u64);
                } else {
                    let _: u64 = rank.recv(1, 1); // never satisfied
                }
                rank.rank()
            });
        match &v.verdict {
            RunVerdict::RankFailed { ranks, detail } => {
                assert_eq!(ranks, &vec![1]);
                assert!(detail.contains("rank 1 crashed"), "detail: {detail}");
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
        assert_eq!(v.results, vec![None, None]);
        assert_eq!(v.fault_counts.crashes, 1);
        // The crashed rank's stats cover work up to the crash point.
        assert!(v.stats[1].clock_s >= 5.0);
    }

    #[test]
    fn crash_on_nth_send_fires_before_that_send() {
        let v = Machine::new(2, CostModel::zero_cost())
            .fault_plan(FaultPlan::new().crash_on_send(0, 3))
            .run_verdict(|rank| {
                if rank.rank() == 0 {
                    for i in 0..5u64 {
                        rank.send(1, 1, i);
                    }
                } else {
                    let mut got = Vec::new();
                    for _ in 0..5 {
                        got.push(rank.recv::<u64>(0, 1));
                    }
                    return got.len();
                }
                0
            });
        assert!(matches!(
            v.verdict,
            RunVerdict::RankFailed { ref ranks, .. } if ranks == &vec![0]
        ));
        // Exactly two sends escaped before the third was suppressed.
        assert_eq!(v.stats[0].msgs_sent, 2);
        assert_eq!(v.fault_counts.crashes, 1);
    }

    /// Regression: when every live rank is blocked but a *crashed* rank is
    /// the one holding the undelivered sends, the verdict must be
    /// `RankFailed` — the old all-blocked scan reported a spurious
    /// `Deadlock` because it never distinguished crashed from live ranks.
    #[test]
    fn crashed_sender_is_rank_failure_not_deadlock() {
        for nranks in [2usize, 4] {
            let v = Machine::new(nranks, CostModel::zero_cost())
                .fault_plan(FaultPlan::new().crash_on_send(1, 1))
                .run_verdict(move |rank| {
                    if rank.rank() == 1 {
                        // First send crashes: every peer below waits forever.
                        for dst in 0..rank.nranks() {
                            if dst != 1 {
                                rank.send(dst, 1, 1u64);
                            }
                        }
                    } else {
                        let _: u64 = rank.recv(1, 1);
                    }
                    0
                });
            match &v.verdict {
                RunVerdict::RankFailed { ranks, detail } => {
                    assert_eq!(ranks, &vec![1]);
                    assert!(detail.contains("crashed"), "detail: {detail}");
                }
                other => panic!("nranks={nranks}: expected RankFailed, got {other:?}"),
            }
        }
    }

    #[test]
    fn messages_posted_before_a_crash_still_deliver() {
        let v = Machine::new(2, CostModel::zero_cost())
            .fault_plan(FaultPlan::new().crash_on_send(1, 2))
            .run_verdict(|rank| {
                if rank.rank() == 1 {
                    rank.send(0, 1, 41u64); // delivered
                    rank.send(0, 2, 42u64); // crash fires instead
                    0
                } else {
                    rank.recv::<u64>(1, 1) as usize
                }
            });
        // Rank 0 got the first message and finished; the crash only lost
        // the future send.
        assert_eq!(v.results[0], Some(41));
        assert!(matches!(v.verdict, RunVerdict::RankFailed { .. }));
    }

    #[test]
    fn delay_link_shifts_arrival_without_charging_sender() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 0.0,
        };
        let run = |plan: FaultPlan| {
            Machine::new(2, m).fault_plan(plan).run_verdict(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 1, 1u64);
                } else {
                    let _: u64 = rank.recv(0, 1);
                }
                rank.clock()
            })
        };
        let base = run(FaultPlan::new());
        let slow = run(FaultPlan::new().delay_link(0, 1, 10.0));
        // Sender occupancy unchanged; receiver sees the message 10·α later.
        assert_eq!(slow.results[0], base.results[0]);
        assert_eq!(
            slow.results[1].unwrap(),
            base.results[1].unwrap() + 10.0 * m.alpha_s
        );
        assert_eq!(slow.fault_counts.delayed_msgs, 1);
        assert_eq!(base.fault_counts.delayed_msgs, 0);
    }

    #[test]
    fn duplicate_link_delivers_twice_and_counts() {
        let v = Machine::new(2, CostModel::zero_cost())
            .fault_plan(FaultPlan::new().duplicate_link(0, 1))
            .run_verdict(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 1, 9u64);
                    0
                } else {
                    let a: u64 = rank.recv(0, 1);
                    let b: u64 = rank.recv(0, 1); // the injected copy
                    (a + b) as usize
                }
            });
        assert!(v.verdict.is_completed());
        assert_eq!(v.results[1], Some(18));
        assert_eq!(v.fault_counts.duplicated_msgs, 1);
    }

    #[test]
    fn recv_deadline_returns_typed_timeout_without_aborting() {
        let v = Machine::new(2, CostModel::zero_cost()).run_verdict(|rank| {
            if rank.rank() == 0 {
                // Rank 1 never sends on tag 5: typed timeout, then continue.
                let got = rank.recv_deadline::<u64>(1, 5, 3.0);
                assert_eq!(
                    got,
                    Err(RecvError::TimedOut {
                        src: 1,
                        tag: 5,
                        waited: 3.0
                    })
                );
                // The deadline advanced our clock deterministically.
                assert_eq!(rank.clock(), 3.0);
            }
            rank.rank()
        });
        assert!(v.verdict.is_completed());
        assert_eq!(v.fault_counts.timeouts, 1);
    }

    #[test]
    fn machine_recv_timeout_yields_timed_out_verdict() {
        let v = Machine::new(2, CostModel::zero_cost())
            .recv_timeout(2.0)
            .run_verdict(|rank| {
                if rank.rank() == 0 {
                    let _: u64 = rank.recv(1, 7); // never sent
                }
                rank.rank()
            });
        match v.verdict {
            RunVerdict::TimedOut {
                rank,
                src,
                tag,
                waited_s,
            } => {
                assert_eq!((rank, src, tag), (0, 1, 7));
                assert!(waited_s > 0.0 && waited_s <= 2.0);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(v.results[1], Some(1));
        assert_eq!(v.fault_counts.timeouts, 1);
    }

    #[test]
    fn fault_runs_reproduce_bitwise() {
        let m = CostModel::bluegene_p();
        let plan = FaultPlan::new()
            .crash_at(2, 1e-5)
            .delay_link(0, 1, 250.0)
            .duplicate_link(1, 3);
        let run = || {
            Machine::new(4, m)
                .fault_plan(plan.clone())
                .recv_timeout(1.0)
                .run_verdict(|rank| {
                    let r = rank.rank();
                    rank.compute(1e4 * (r + 1) as f64);
                    rank.send((r + 1) % rank.nranks(), 1, vec![r as f64; 32]);
                    let from = (r + rank.nranks() - 1) % rank.nranks();
                    let _ = rank.recv_deadline::<Vec<f64>>(from, 1, 5e-4);
                    rank.clock()
                })
        };
        let a = run();
        let b = run();
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.fault_counts, b.fault_counts);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        for (x, y) in a.stats.iter().zip(&b.stats) {
            assert_eq!(x.clock_s.to_bits(), y.clock_s.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn legacy_run_panics_descriptively_on_injected_crash() {
        let _ = Machine::new(2, CostModel::zero_cost())
            .fault_plan(FaultPlan::new().crash_on_send(1, 1))
            .run(|rank| {
                if rank.rank() == 1 {
                    rank.send(0, 1, 1u64);
                } else {
                    let _: u64 = rank.recv(1, 1);
                }
                0
            });
    }

    // ---- communication matrix ----

    /// Classifier used by the matrix tests: even tags class 0, odd class 1.
    fn parity(tag: u64) -> usize {
        (tag % 2) as usize
    }

    #[test]
    fn comm_matrix_counts_per_link_and_class() {
        let r = Machine::new(3, CostModel::zero_cost())
            .comm_matrix(&["even", "odd"], parity)
            .run(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 2, vec![1.0f64; 4]); // 32 B, class 0
                    rank.send(2, 3, vec![1.0f64; 2]); // 16 B, class 1
                    let _req = rank.isend(2, 5, 7u64); // 8 B, class 1
                } else if rank.rank() == 1 {
                    let _: Vec<f64> = rank.recv(0, 2);
                } else {
                    let _: Vec<f64> = rank.recv(0, 3);
                    let _: u64 = rank.recv(0, 5);
                }
                0
            });
        let m = r.comm.expect("matrix requested");
        assert_eq!(m.class_names, vec!["even", "odd"]);
        assert_eq!(m.at(0, 1, 0), (32, 1));
        assert_eq!(m.at(0, 2, 1), (16 + 8, 2));
        assert_eq!(m.at(0, 2, 0), (0, 0));
        assert_eq!(m.sent_bytes(0), 56);
        assert_eq!(m.posted_bytes(2), 24);
        assert_eq!(m.class_bytes(1), 24);
        assert_eq!(m.total_bytes(), 56);
        assert_eq!(m.total_msgs(), 3);
        // Row/column sums reconcile with the per-rank counters.
        assert_eq!(r.stats[0].bytes_sent, 56);
        assert_eq!(r.stats[2].bytes_recv, 24);
        assert_eq!(r.stats[2].msgs_recv, 2);
    }

    #[test]
    fn comm_matrix_off_by_default_and_never_perturbs_clocks() {
        let program = |rank: &mut Rank| {
            if rank.rank() == 0 {
                rank.compute(1e6);
                rank.send(1, 4, vec![2.0f64; 128]);
                let req = rank.isend(1, 5, vec![3.0f64; 64]);
                rank.wait_send(req);
            } else {
                let _: Vec<f64> = rank.recv(0, 4);
                let _: Vec<f64> = rank.recv(0, 5);
            }
            rank.clock()
        };
        let plain = Machine::new(2, CostModel::bluegene_p()).run(program);
        assert!(plain.comm.is_none());
        let traced = Machine::new(2, CostModel::bluegene_p())
            .comm_matrix(&["even", "odd"], parity)
            .run(program);
        // Bitwise identical virtual time with and without the matrix.
        for (a, b) in plain.results.iter().zip(&traced.results) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(plain.makespan_s.to_bits(), traced.makespan_s.to_bits());
        assert_eq!(traced.comm.unwrap().total_msgs(), 2);
    }

    /// Fault-injected duplicates are posted into the network, so the sender
    /// counts both copies — row sums, column sums, and receive counters all
    /// agree (the end-of-run debug reconciliation also checks this).
    #[test]
    fn duplicated_messages_count_in_matrix_and_stats() {
        let v = Machine::new(2, CostModel::zero_cost())
            .fault_plan(FaultPlan::new().duplicate_link(0, 1))
            .comm_matrix(&["even", "odd"], parity)
            .run_verdict(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 1, 9u64);
                } else {
                    let a: u64 = rank.recv(0, 1);
                    let b: u64 = rank.recv(0, 1); // the injected copy
                    assert_eq!(a + b, 18);
                }
                0
            });
        assert!(v.verdict.is_completed());
        assert_eq!(v.fault_counts.duplicated_msgs, 1);
        assert_eq!(v.stats[0].bytes_sent, 16);
        assert_eq!(v.stats[0].msgs_sent, 2);
        assert_eq!(v.stats[1].bytes_recv, 16);
        let m = v.comm.expect("matrix requested");
        assert_eq!(m.at(0, 1, 1), (16, 2));
    }

    /// An undrained duplicate stays queued; the reconciliation assertion
    /// accepts it as leftover rather than mis-flagging a lost byte.
    #[test]
    fn undrained_duplicate_reconciles_as_leftover() {
        let v = Machine::new(2, CostModel::zero_cost())
            .fault_plan(FaultPlan::new().duplicate_link(0, 1))
            .comm_matrix(&["even", "odd"], parity)
            .run_verdict(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 1, 9u64);
                } else {
                    let _: u64 = rank.recv(0, 1); // drain one of two copies
                }
                0
            });
        assert!(v.verdict.is_completed());
        assert_eq!(v.stats[0].bytes_sent, 16);
        assert_eq!(v.stats[1].bytes_recv, 8);
        assert_eq!(v.comm.unwrap().posted_bytes(1), 16);
    }

    #[test]
    fn broadcast_forwards_land_in_matrix_rows() {
        // Binomial-tree bcast/ibcast forward through intermediate ranks;
        // each forward must appear on the forwarder's row so the matrix
        // reconciles (checked by the debug assertion at run end).
        let r = Machine::new(4, CostModel::bluegene_p())
            .comm_matrix(&["even", "odd"], parity)
            .run(|rank| {
                let world = collective::Group::world(rank.nranks());
                let seed = (rank.rank() == 0).then(|| vec![1.0f64; 16]);
                let v = collective::bcast(rank, &world, 0, seed, 6);
                assert_eq!(v.len(), 16);
                let seed = (rank.rank() == 0).then(|| vec![2.0f64; 8]);
                let w = collective::ibcast(rank, &world, 0, seed, 8);
                v[0] + w[0]
            });
        let m = r.comm.expect("matrix requested");
        // Every non-root rank received both payloads exactly once.
        for dst in 1..4 {
            assert_eq!(m.posted_bytes(dst), 16 * 8 + 8 * 8);
        }
        // Forwarding ranks sent some of that traffic (root did not send to
        // every rank directly in a 4-rank binomial tree).
        let forwarded: u64 = (1..4).map(|s| m.sent_bytes(s)).sum();
        assert!(forwarded > 0, "no forwards recorded");
        assert_eq!(
            m.total_bytes(),
            (0..4).map(|s| r.stats[s].bytes_sent).sum::<u64>()
        );
    }

    #[test]
    fn fault_markers_appear_on_traced_timelines() {
        let v = Machine::new(2, CostModel::zero_cost())
            .trace_events(true)
            .fault_plan(FaultPlan::new().crash_on_send(1, 1))
            .run_verdict(|rank| {
                if rank.rank() == 1 {
                    rank.send(0, 1, 1u64);
                } else {
                    let _: u64 = rank.recv(1, 1);
                }
                0
            });
        let faults: Vec<&SpanEvent> = v.events[1]
            .iter()
            .filter(|e| e.phase == Phase::Fault)
            .collect();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].dur_s, 0.0);
    }
}
