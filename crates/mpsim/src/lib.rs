//! A deterministic message-passing machine simulator.
//!
//! This crate stands in for MPI on a massively parallel machine (the SC'09
//! testbed was a Blue Gene/P-class system): each *rank* runs as a real OS
//! thread executing the real distributed algorithm and exchanging real
//! data, while a per-rank **virtual clock** advances according to an α–β
//! communication model and a per-flop compute rate ([`model::CostModel`]).
//!
//! What is real: every byte of payload, the algorithm's control flow, its
//! message pattern, and all numeric results (bit-for-bit deterministic —
//! receives are matched by `(source, tag)`, never by arrival order).
//! What is modelled: *time*. The simulated makespan is derived from the
//! same flop/byte/message counts that determine wall-clock time on real
//! hardware, which is what the scaling experiments measure.
//!
//! # Nonblocking communication
//!
//! [`Rank::send`] models an eager blocking send: the sender is occupied for
//! the full `α + bytes·β`. [`Rank::isend`] models a nonblocking send whose
//! transfer is pipelined by the network: the sender pays only `α`, the
//! `bytes·β` transfer proceeds in the background (counted in
//! `comm_hidden_s`), and the message arrives at the receiver at
//! `clock_after_α + bytes·β`. On the receive side, [`Rank::probe`],
//! [`Rank::try_recv`] and [`Rank::wait_any`] let a schedule react to what
//! has *virtually* arrived.
//!
//! Determinism is preserved by a strict rule: every nonblocking decision is
//! a function of **virtual** arrival times, never of host-thread timing.
//! An operation that needs to know an arrival time physically blocks the OS
//! thread (without advancing the virtual clock) until the message is
//! posted, then decides. This is safe for SPMD programs in which every
//! expected message is eventually sent without further action from the
//! waiter; genuine protocol errors are caught by all-ranks-blocked deadlock
//! detection, which aborts the run with a per-rank diagnostic instead of
//! hanging.
//!
//! ```
//! use parfact_mpsim::{Machine, model::CostModel};
//!
//! let report = Machine::new(4, CostModel::bluegene_p()).run(|rank| {
//!     // SPMD program: ring-pass a token.
//!     let p = rank.nranks();
//!     let next = (rank.rank() + 1) % p;
//!     let prev = (rank.rank() + p - 1) % p;
//!     rank.send(next, 7, rank.rank() as u64);
//!     let token: u64 = rank.recv(prev, 7);
//!     token
//! });
//! assert_eq!(report.results, vec![3, 0, 1, 2]);
//! assert!(report.makespan_s > 0.0);
//! ```

pub mod collective;
pub mod model;
pub mod payload;

use model::CostModel;
use parfact_trace::{Phase, SpanEvent};
use parking_lot::{Condvar, Mutex};
use payload::Payload;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A message in flight.
struct Msg {
    data: Box<dyn Any + Send>,
    /// Virtual time at which the message is fully available at the receiver.
    arrival: f64,
    #[allow(dead_code)]
    bytes: usize,
}

#[derive(Default)]
struct Queues {
    map: HashMap<(usize, u64), std::collections::VecDeque<Msg>>,
    /// Messages currently queued (all keys).
    depth: usize,
    /// High-water mark of `depth`. A physical diagnostic of buffering
    /// pressure: it can vary run-to-run with host scheduling (unlike clocks
    /// and numeric results, which are deterministic).
    depth_peak: usize,
}

impl Queues {
    fn head_arrival(&self, key: &(usize, u64)) -> Option<f64> {
        self.map.get(key).and_then(|q| q.front()).map(|m| m.arrival)
    }
}

#[derive(Default)]
struct Mailbox {
    queues: Mutex<Queues>,
    signal: Condvar,
}

/// Deadlock-detection registry: which ranks are parked in a blocking
/// receive (and on which keys), and which have finished their program and
/// can never send again.
#[derive(Default)]
struct WaitState {
    blocked: Vec<Option<Vec<(usize, u64)>>>,
    done: Vec<bool>,
}

struct Shared {
    boxes: Vec<Mailbox>,
    failed: AtomicBool,
    /// Registry used only for deadlock detection — see `register_blocked`.
    waiting: Mutex<WaitState>,
    /// Diagnostic set by the rank that detects an all-ranks-blocked
    /// deadlock; every parked rank re-raises it.
    deadlock: Mutex<Option<String>>,
    model: CostModel,
}

impl Shared {
    /// With the `waiting` lock held: if every rank is either finished or
    /// parked, and no parked rank's keys have a posted message anywhere,
    /// the blockage can never resolve — record a per-rank diagnostic, set
    /// the failure flag and wake everyone.
    ///
    /// Lock order: `waiting` before any mailbox `queues`; waiters never
    /// hold their own `queues` lock while taking `waiting`.
    fn deadlock_scan(&self, w: &WaitState) {
        // A run that already failed (peer panic or error) aborts through
        // the failure flag; a deadlock verdict now would be spurious and
        // could mask the real panic.
        if self.failed.load(Ordering::SeqCst) {
            return;
        }
        let any_blocked = w.blocked.iter().any(Option::is_some);
        let all_stuck = any_blocked
            && w.done
                .iter()
                .zip(&w.blocked)
                .all(|(&done, blocked)| done || blocked.is_some());
        if !all_stuck {
            return;
        }
        let live = w.blocked.iter().enumerate().any(|(r, entry)| match entry {
            Some(keys) => {
                let q = self.boxes[r].queues.lock();
                keys.iter().any(|k| q.head_arrival(k).is_some())
            }
            None => false,
        });
        if live {
            return;
        }
        use std::fmt::Write;
        let mut diag = String::from(
            "mpsim deadlock: every rank is finished or blocked in recv \
             with no matching message in flight\n",
        );
        for (r, entry) in w.blocked.iter().enumerate() {
            match entry {
                Some(keys) => {
                    let list = keys
                        .iter()
                        .map(|(s, t)| format!("(src={s}, tag={t})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let _ = writeln!(diag, "  rank {r} waiting on: {list}");
                }
                None => {
                    let _ = writeln!(diag, "  rank {r} finished");
                }
            }
        }
        *self.deadlock.lock() = Some(diag);
        self.failed.store(true, Ordering::SeqCst);
        for b in &self.boxes {
            b.signal.notify_all();
        }
    }

    /// Mark rank `r`'s program as completed: it can never send again, so a
    /// deadlock among the remaining ranks may now be decidable.
    fn mark_done(&self, r: usize) {
        let mut w = self.waiting.lock();
        w.done[r] = true;
        self.deadlock_scan(&w);
    }
}

/// Panic payload used to abort ranks that are blocked on a peer which
/// panicked or returned an error. Filtered out when the machine picks which
/// panic to propagate.
struct PeerAborted;

/// Per-rank execution statistics (virtual time and counters).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Final virtual clock (seconds).
    pub clock_s: f64,
    /// Virtual seconds spent computing.
    pub compute_s: f64,
    /// Virtual seconds spent in communication (send occupancy + recv waits).
    pub comm_s: f64,
    /// Modelled transfer seconds hidden under compute by [`Rank::isend`]:
    /// `bytes·β` that never occupied the sender's clock.
    pub comm_hidden_s: f64,
    /// Peak number of messages queued at this rank's mailbox at once
    /// (physical high-water mark; diagnostic, not deterministic).
    pub queue_peak: u64,
    /// Floating-point operations executed (as reported via `compute`).
    pub flops: f64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Peak tracked memory (bytes) — fronts/factors report via `alloc`/`free`.
    pub mem_peak: u64,
}

impl RankStats {
    /// Fold this rank's statistics into the shared report schema
    /// ([`parfact_trace::RankReport`]) used by every engine's
    /// `FactorReport`.
    pub fn to_report(&self, rank: usize) -> parfact_trace::RankReport {
        parfact_trace::RankReport {
            rank,
            clock_s: self.clock_s,
            compute_s: self.compute_s,
            comm_s: self.comm_s,
            comm_hidden_s: self.comm_hidden_s,
            queue_peak: self.queue_peak,
            flops: self.flops,
            bytes_sent: self.bytes_sent,
            msgs_sent: self.msgs_sent,
            mem_peak_bytes: self.mem_peak,
        }
    }
}

/// Handle returned by [`Rank::isend`]. The payload is already en route; the
/// handle records when the modelled transfer completes so a sender that
/// must reuse the "buffer" can [`Rank::wait_send`] for it.
#[derive(Debug, Clone, Copy)]
pub struct SendReq {
    /// Virtual time at which the transfer is complete (equals the
    /// receiver-side arrival time).
    pub complete_at: f64,
}

/// Handle a rank's program uses to talk to the machine.
pub struct Rank {
    rank: usize,
    nranks: usize,
    shared: Arc<Shared>,
    clock: f64,
    compute_s: f64,
    comm_s: f64,
    comm_hidden_s: f64,
    flops: f64,
    bytes_sent: u64,
    msgs_sent: u64,
    mem_cur: u64,
    mem_peak: u64,
    /// When on, communication ops and [`Rank::compute_as`] append
    /// [`SpanEvent`]s (virtual timestamps, `who = rank`). Recording never
    /// touches the clocks, so traced and untraced runs are bitwise
    /// identical. `RefCell` because `probe`/`probe_all` take `&self`; the
    /// `Rank` never leaves its own thread.
    trace: bool,
    events: RefCell<Vec<SpanEvent>>,
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The machine's cost model.
    pub fn model(&self) -> &CostModel {
        &self.shared.model
    }

    /// Advance the virtual clock by the cost of `flops` floating-point
    /// operations. Call this next to the real computation it accounts for.
    pub fn compute(&mut self, flops: f64) {
        let dt = flops * self.shared.model.flop_time_s;
        self.clock += dt;
        self.compute_s += dt;
        self.flops += flops;
    }

    /// [`Rank::compute`] plus an attributed [`SpanEvent`] (when event
    /// tracing is on): the span covers the virtual interval the charge
    /// occupied and tags it with a phase and optionally a supernode.
    pub fn compute_as(&mut self, flops: f64, phase: Phase, supernode: Option<usize>) {
        let t0 = self.clock;
        self.compute(flops);
        self.push_span(phase, supernode, t0, self.clock - t0);
    }

    /// Toggle event recording. Off by default; [`Machine::trace_events`]
    /// turns it on for every rank. Programs switch it off to exclude
    /// epilogue traffic (e.g. factor gather) from the timeline, mirroring
    /// what their stats snapshots exclude.
    pub fn set_trace_events(&mut self, on: bool) {
        self.trace = on;
    }

    /// Is event recording currently on?
    pub fn trace_events_enabled(&self) -> bool {
        self.trace
    }

    /// Drain the recorded events (chronological for this rank).
    pub fn take_events(&mut self) -> Vec<SpanEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    #[inline]
    fn push_span(&self, phase: Phase, supernode: Option<usize>, start_s: f64, dur_s: f64) {
        if self.trace {
            self.events.borrow_mut().push(SpanEvent {
                phase,
                supernode,
                who: self.rank,
                start_s,
                dur_s,
            });
        }
    }

    /// Advance the virtual clock by an explicit amount of seconds (e.g.
    /// memory-bound phases accounted by bytes / bandwidth).
    pub fn advance(&mut self, seconds: f64) {
        self.clock += seconds;
        self.compute_s += seconds;
    }

    /// Report a tracked allocation (fronts, factor blocks).
    pub fn alloc(&mut self, bytes: usize) {
        self.mem_cur += bytes as u64;
        self.mem_peak = self.mem_peak.max(self.mem_cur);
    }

    /// Report a tracked deallocation.
    pub fn free(&mut self, bytes: usize) {
        self.mem_cur = self.mem_cur.saturating_sub(bytes as u64);
    }

    fn post(&self, dst: usize, tag: u64, data: Box<dyn Any + Send>, arrival: f64, bytes: usize) {
        let mbox = &self.shared.boxes[dst];
        {
            let mut q = mbox.queues.lock();
            q.map.entry((self.rank, tag)).or_default().push_back(Msg {
                data,
                arrival,
                bytes,
            });
            q.depth += 1;
            q.depth_peak = q.depth_peak.max(q.depth);
        }
        mbox.signal.notify_all();
    }

    /// Send `payload` to rank `dst` with `tag`. The sender is occupied for
    /// `α + bytes·β` virtual seconds (store-and-forward injection); the
    /// message becomes available to the receiver at the sender's clock after
    /// injection.
    pub fn send<T: Payload>(&mut self, dst: usize, tag: u64, payload: T) {
        assert!(dst < self.nranks, "send to rank {dst} of {}", self.nranks);
        assert_ne!(dst, self.rank, "self-sends are not modelled; restructure");
        let bytes = payload.nbytes();
        let m = &self.shared.model;
        let dt = m.alpha_s + bytes as f64 * m.beta_s_per_byte;
        self.push_span(Phase::Comm, None, self.clock, dt);
        self.clock += dt;
        self.comm_s += dt;
        self.bytes_sent += bytes as u64;
        self.msgs_sent += 1;
        self.post(dst, tag, Box::new(payload), self.clock, bytes);
    }

    /// Nonblocking send: the sender is occupied for `α` only; the `bytes·β`
    /// transfer is pipelined by the modelled network and charged to
    /// [`RankStats::comm_hidden_s`] instead of the clock. The message
    /// arrives at the receiver at `clock_after_α + bytes·β`.
    pub fn isend<T: Payload>(&mut self, dst: usize, tag: u64, payload: T) -> SendReq {
        assert!(dst < self.nranks, "isend to rank {dst} of {}", self.nranks);
        assert_ne!(dst, self.rank, "self-sends are not modelled; restructure");
        let bytes = payload.nbytes();
        let m = &self.shared.model;
        let transfer = bytes as f64 * m.beta_s_per_byte;
        self.push_span(Phase::Comm, None, self.clock, m.alpha_s);
        self.clock += m.alpha_s;
        self.comm_s += m.alpha_s;
        self.comm_hidden_s += transfer;
        self.bytes_sent += bytes as u64;
        self.msgs_sent += 1;
        let arrival = self.clock + transfer;
        self.post(dst, tag, Box::new(payload), arrival, bytes);
        SendReq {
            complete_at: arrival,
        }
    }

    /// Wait for an [`Rank::isend`] transfer to complete: advances the clock
    /// to `complete_at` if it lies in the future. The exposed portion of
    /// the wait is moved from `comm_hidden_s` back to `comm_s` so the
    /// hidden counter stays honest.
    pub fn wait_send(&mut self, req: SendReq) {
        if req.complete_at > self.clock {
            let exposed = req.complete_at - self.clock;
            self.push_span(Phase::Wait, None, self.clock, exposed);
            self.clock = req.complete_at;
            self.comm_s += exposed;
            self.comm_hidden_s = (self.comm_hidden_s - exposed).max(0.0);
        }
    }

    /// Receive the next message from `src` with `tag`, blocking until it is
    /// available. The receiver's clock advances to at least the message's
    /// arrival time. Matching is strictly by `(src, tag)` — there is no
    /// wildcard receive, which keeps execution and floating point
    /// deterministic.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: u64) -> T {
        let (data, arrival) = self.recv_raw(src, tag);
        if arrival > self.clock {
            self.push_span(Phase::Wait, None, self.clock, arrival - self.clock);
            self.comm_s += arrival - self.clock;
            self.clock = arrival;
        }
        self.downcast(data, src, tag)
    }

    /// Block (physically, without advancing the virtual clock) until a
    /// message from `(src, tag)` is posted; return its virtual arrival time
    /// without consuming it.
    pub fn probe(&self, src: usize, tag: u64) -> f64 {
        let arrival = self.wait_heads(std::slice::from_ref(&(src, tag)))[0];
        // Zero-duration marker at the probed arrival: probes consume no
        // virtual time, but the trace shows what the scheduler saw coming.
        self.push_span(Phase::Wait, None, arrival, 0.0);
        arrival
    }

    /// Block (physically, without advancing the virtual clock) until every
    /// key in `keys` has a message at the head of its queue; return the head
    /// arrival times in `keys` order. This is the primitive that event-
    /// driven schedulers use to make decisions from virtual time only.
    pub fn probe_all(&self, keys: &[(usize, u64)]) -> Vec<f64> {
        let arrivals = self.wait_heads(keys);
        if let Some(next) = arrivals.iter().copied().reduce(f64::min) {
            // One marker per poll, at the nearest head arrival (the
            // scheduler's event horizon).
            self.push_span(Phase::Wait, None, next, 0.0);
        }
        arrivals
    }

    /// Receive from `(src, tag)` only if the message has already arrived in
    /// *virtual* time (head arrival ≤ current clock). The decision depends
    /// on virtual time only, never on host-thread scheduling, so control
    /// flow stays deterministic; the OS thread blocks until the head is
    /// posted so the arrival time is known.
    pub fn try_recv<T: Payload>(&mut self, src: usize, tag: u64) -> Option<T> {
        let arrival = self.probe(src, tag);
        if arrival > self.clock {
            return None;
        }
        let (data, _) = self.pop_head(src, tag);
        Some(self.downcast(data, src, tag))
    }

    /// Wait until the earliest (in virtual time) of the pending messages in
    /// `keys`, receive it, and return `(index_into_keys, value)`. Ties on
    /// arrival time break by `(src, tag)`, keeping the choice deterministic.
    /// The clock advances to the chosen message's arrival if it lies in the
    /// future.
    pub fn wait_any<T: Payload>(&mut self, keys: &[(usize, u64)]) -> (usize, T) {
        assert!(!keys.is_empty(), "wait_any on an empty key set");
        let arrivals = self.wait_heads(keys);
        let mut best = 0usize;
        for i in 1..keys.len() {
            let better =
                (arrivals[i], keys[i].0, keys[i].1) < (arrivals[best], keys[best].0, keys[best].1);
            if better {
                best = i;
            }
        }
        let (src, tag) = keys[best];
        let (data, arrival) = self.pop_head(src, tag);
        if arrival > self.clock {
            self.push_span(Phase::Wait, None, self.clock, arrival - self.clock);
            self.comm_s += arrival - self.clock;
            self.clock = arrival;
        }
        (best, self.downcast(data, src, tag))
    }

    fn downcast<T: Payload>(&self, data: Box<dyn Any + Send>, src: usize, tag: u64) -> T {
        match data.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "rank {}: type mismatch receiving (src={src}, tag={tag}): expected {}",
                self.rank,
                std::any::type_name::<T>()
            ),
        }
    }

    fn pop_head(&mut self, src: usize, tag: u64) -> (Box<dyn Any + Send>, f64) {
        let mut q = self.shared.boxes[self.rank].queues.lock();
        let msg = q
            .map
            .get_mut(&(src, tag))
            .and_then(|d| d.pop_front())
            .expect("message head vanished between wait and pop");
        q.depth -= 1;
        (msg.data, msg.arrival)
    }

    fn recv_raw(&mut self, src: usize, tag: u64) -> (Box<dyn Any + Send>, f64) {
        self.wait_heads(std::slice::from_ref(&(src, tag)));
        self.pop_head(src, tag)
    }

    /// Abort this rank because the run failed elsewhere: re-raise a
    /// deadlock diagnostic if one was recorded, otherwise unwind with the
    /// `PeerAborted` sentinel (filtered out by the machine).
    fn check_failed(&self) {
        if self.shared.failed.load(Ordering::SeqCst) {
            if let Some(diag) = self.shared.deadlock.lock().clone() {
                std::panic::panic_any(diag);
            }
            std::panic::panic_any(PeerAborted);
        }
    }

    /// Park until every key in `keys` has a queue head; return the head
    /// arrivals in `keys` order. Blocks the OS thread only — the virtual
    /// clock is untouched. All blocking receives funnel through here so the
    /// deadlock detector sees every parked rank.
    fn wait_heads(&self, keys: &[(usize, u64)]) -> Vec<f64> {
        for &(src, _) in keys {
            assert!(src < self.nranks, "recv from rank {src} of {}", self.nranks);
        }
        let mbox = &self.shared.boxes[self.rank];
        loop {
            let missing: Vec<(usize, u64)> = {
                let q = mbox.queues.lock();
                let missing: Vec<(usize, u64)> = keys
                    .iter()
                    .copied()
                    .filter(|k| q.head_arrival(k).is_none())
                    .collect();
                if missing.is_empty() {
                    return keys
                        .iter()
                        .map(|k| q.head_arrival(k).expect("head present"))
                        .collect();
                }
                missing
            };
            self.check_failed();
            self.register_blocked(&missing);
            {
                let mut q = mbox.queues.lock();
                let still_missing = missing.iter().any(|k| q.head_arrival(k).is_none());
                if still_missing && !self.shared.failed.load(Ordering::SeqCst) {
                    mbox.signal.wait_for(&mut q, Duration::from_millis(50));
                }
            }
            self.unregister_blocked();
            self.check_failed();
        }
    }

    /// Record this rank as parked on `missing`. The rank that completes the
    /// "everyone is finished or parked" condition verifies the deadlock: no
    /// registered key anywhere has a posted message. Between registering
    /// and unregistering a rank sends nothing, so if the scan finds no
    /// satisfying message the blockage cannot resolve — fail the run with a
    /// per-rank diagnostic instead of hanging.
    fn register_blocked(&self, missing: &[(usize, u64)]) {
        let mut w = self.shared.waiting.lock();
        w.blocked[self.rank] = Some(missing.to_vec());
        self.shared.deadlock_scan(&w);
    }

    fn unregister_blocked(&self) {
        self.shared.waiting.lock().blocked[self.rank] = None;
    }

    /// Snapshot of this rank's statistics.
    pub fn stats(&self) -> RankStats {
        let queue_peak = self.shared.boxes[self.rank].queues.lock().depth_peak as u64;
        RankStats {
            clock_s: self.clock,
            compute_s: self.compute_s,
            comm_s: self.comm_s,
            comm_hidden_s: self.comm_hidden_s,
            queue_peak,
            flops: self.flops,
            bytes_sent: self.bytes_sent,
            msgs_sent: self.msgs_sent,
            mem_peak: self.mem_peak,
        }
    }
}

/// Report of a completed SPMD run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank statistics.
    pub stats: Vec<RankStats>,
    /// Per-rank recorded events (empty unless [`Machine::trace_events`]).
    pub events: Vec<Vec<SpanEvent>>,
    /// Simulated makespan: the maximum final virtual clock (seconds).
    pub makespan_s: f64,
}

impl<R> RunReport<R> {
    /// Total flops across ranks.
    pub fn total_flops(&self) -> f64 {
        self.stats.iter().map(|s| s.flops).sum()
    }

    /// Total payload bytes sent across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total messages sent across ranks.
    pub fn total_msgs(&self) -> u64 {
        self.stats.iter().map(|s| s.msgs_sent).sum()
    }

    /// Modelled aggregate Gflop/s achieved over the makespan.
    pub fn gflops(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.total_flops() / self.makespan_s / 1e9
        } else {
            0.0
        }
    }

    /// Maximum per-rank peak tracked memory (bytes).
    pub fn max_mem_peak(&self) -> u64 {
        self.stats.iter().map(|s| s.mem_peak).max().unwrap_or(0)
    }
}

/// A simulated message-passing machine with a fixed rank count and cost
/// model.
pub struct Machine {
    nranks: usize,
    model: CostModel,
    trace: bool,
}

enum Outcome<R, E> {
    Done(R, RankStats, Vec<SpanEvent>),
    Errored(E),
}

impl Machine {
    /// Create a machine with `nranks` ranks.
    pub fn new(nranks: usize, model: CostModel) -> Self {
        assert!(nranks > 0);
        Machine {
            nranks,
            model,
            trace: false,
        }
    }

    /// Record communication events (and [`Rank::compute_as`] spans) on
    /// every rank; they come back in [`RunReport::events`]. Off by default
    /// — recording allocates per event but never perturbs virtual clocks.
    pub fn trace_events(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Run an SPMD program: `f` is executed once per rank, each on its own
    /// OS thread. Panics in any rank abort the whole run (peers unblock and
    /// re-panic) and the panic is propagated to the caller.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        match self.run_result::<R, std::convert::Infallible, _>(|rank| Ok(f(rank))) {
            Ok(rep) => rep,
            Err(e) => match e {},
        }
    }

    /// Run an SPMD program whose ranks can fail with a typed error. When a
    /// rank returns `Err`, peers blocked on its messages are unwound
    /// internally (their partial results are discarded) and the
    /// lowest-numbered rank's error is returned. Real panics still
    /// propagate as panics.
    pub fn run_result<R, E, F>(&self, f: F) -> Result<RunReport<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(&mut Rank) -> Result<R, E> + Send + Sync,
    {
        let shared = Arc::new(Shared {
            boxes: (0..self.nranks).map(|_| Mailbox::default()).collect(),
            failed: AtomicBool::new(false),
            waiting: Mutex::new(WaitState {
                blocked: vec![None; self.nranks],
                done: vec![false; self.nranks],
            }),
            deadlock: Mutex::new(None),
            model: self.model,
        });
        let abort = |shared: &Shared| {
            shared.failed.store(true, Ordering::SeqCst);
            for b in &shared.boxes {
                b.signal.notify_all();
            }
        };
        let mut slots: Vec<Option<Outcome<R, E>>> = (0..self.nranks).map(|_| None).collect();
        let fref = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = slots
                .iter_mut()
                .enumerate()
                .map(|(r, slot)| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("mpsim-rank-{r}"))
                        .stack_size(4 << 20)
                        .spawn_scoped(scope, move || {
                            let mut rank = Rank {
                                rank: r,
                                nranks: shared.boxes.len(),
                                shared: Arc::clone(&shared),
                                clock: 0.0,
                                compute_s: 0.0,
                                comm_s: 0.0,
                                comm_hidden_s: 0.0,
                                flops: 0.0,
                                bytes_sent: 0,
                                msgs_sent: 0,
                                mem_cur: 0,
                                mem_peak: 0,
                                trace: self.trace,
                                events: RefCell::new(Vec::new()),
                            };
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    fref(&mut rank)
                                }));
                            match out {
                                Ok(Ok(v)) => {
                                    let stats = rank.stats();
                                    *slot = Some(Outcome::Done(v, stats, rank.take_events()));
                                    // This rank will never send again; peers
                                    // blocked on it may now be provably
                                    // deadlocked.
                                    shared.mark_done(r);
                                    Ok(())
                                }
                                Ok(Err(e)) => {
                                    *slot = Some(Outcome::Errored(e));
                                    abort(&shared);
                                    shared.mark_done(r);
                                    Ok(())
                                }
                                Err(p) => {
                                    abort(&shared);
                                    shared.mark_done(r);
                                    Err(p)
                                }
                            }
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            let mut first_panic: Option<Box<dyn Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(p)) | Err(p) => {
                        if p.downcast_ref::<PeerAborted>().is_none() {
                            first_panic.get_or_insert(p);
                        }
                    }
                }
            }
            if let Some(p) = first_panic {
                std::panic::resume_unwind(p);
            }
        });
        let mut out = Vec::with_capacity(self.nranks);
        let mut stats = Vec::with_capacity(self.nranks);
        let mut events = Vec::with_capacity(self.nranks);
        let mut first_err: Option<E> = None;
        for slot in slots {
            match slot {
                Some(Outcome::Done(v, s, ev)) => {
                    out.push(v);
                    stats.push(s);
                    events.push(ev);
                }
                Some(Outcome::Errored(e)) if first_err.is_none() => first_err = Some(e),
                Some(Outcome::Errored(_)) => {}
                // Peer-aborted rank: only reachable when some rank errored.
                None => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        assert_eq!(
            out.len(),
            self.nranks,
            "rank finished without result despite no panic or error"
        );
        let makespan = stats.iter().fold(0.0f64, |m, s| m.max(s.clock_s));
        Ok(RunReport {
            results: out,
            stats,
            events,
            makespan_s: makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::CostModel;

    #[test]
    fn single_rank_runs() {
        let r = Machine::new(1, CostModel::zero_cost()).run(|rank| {
            rank.compute(1000.0);
            rank.rank() * 10
        });
        assert_eq!(r.results, vec![0]);
        assert_eq!(r.stats[0].flops, 1000.0);
    }

    #[test]
    fn ping_pong_values_and_clock() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 0.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, 42u64); // 8 bytes: occupancy 1 + 4 = 5
                let x: u64 = rank.recv(1, 2);
                x
            } else {
                let x: u64 = rank.recv(0, 1); // arrival at 5 -> clock 5
                rank.send(0, 2, x + 1); // clock 10
                x + 1
            }
        });
        assert_eq!(r.results, vec![43, 43]);
        // Rank 1 finishes at 10; rank 0 waits for arrival at 10.
        assert_eq!(r.stats[1].clock_s, 10.0);
        assert_eq!(r.stats[0].clock_s, 10.0);
        assert_eq!(r.makespan_s, 10.0);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                for i in 0..10u64 {
                    rank.send(1, 3, i);
                }
                0
            } else {
                let mut got = Vec::new();
                for _ in 0..10 {
                    got.push(rank.recv::<u64>(0, 3));
                }
                assert_eq!(got, (0..10).collect::<Vec<_>>());
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    fn tags_demultiplex() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 7, 70u64);
                rank.send(1, 8, 80u64);
                0
            } else {
                // Receive in the opposite order of sending.
                let b: u64 = rank.recv(0, 8);
                let a: u64 = rank.recv(0, 7);
                assert_eq!((a, b), (70, 80));
                1
            }
        });
        assert_eq!(r.results.len(), 2);
    }

    #[test]
    fn vectors_round_trip() {
        let r = Machine::new(2, CostModel::bluegene_p()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 0, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let v: Vec<f64> = rank.recv(0, 0);
                v.iter().sum::<f64>()
            }
        });
        assert_eq!(r.results[1], 6.0);
        // 24 payload bytes tracked.
        assert_eq!(r.total_bytes(), 24);
        assert_eq!(r.total_msgs(), 1);
    }

    #[test]
    fn deterministic_timing_across_runs() {
        let run = || {
            Machine::new(4, CostModel::bluegene_p()).run(|rank| {
                let p = rank.nranks();
                // All-to-all ping with compute in between.
                for d in 0..p {
                    if d != rank.rank() {
                        rank.send(d, 5, vec![rank.rank() as f64; 100]);
                    }
                }
                rank.compute(1e6);
                let mut acc = 0.0;
                for s in 0..p {
                    if s != rank.rank() {
                        let v: Vec<f64> = rank.recv(s, 5);
                        acc += v[0];
                    }
                }
                acc
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        for (x, y) in a.stats.iter().zip(&b.stats) {
            assert_eq!(x.clock_s, y.clock_s);
        }
    }

    #[test]
    fn compute_and_memory_tracking() {
        let r = Machine::new(1, CostModel::bluegene_p()).run(|rank| {
            rank.alloc(1000);
            rank.alloc(500);
            rank.free(1000);
            rank.alloc(200);
            rank.compute(3.4e9); // 1 second at 3.4 Gflop/s
            rank.stats().mem_peak
        });
        assert_eq!(r.results[0], 1500);
        assert!((r.stats[0].clock_s - 1.0).abs() < 1e-9);
        assert!((r.stats[0].compute_s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate_and_unblock_peers() {
        Machine::new(3, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                panic!("boom");
            }
            // Peers block on a message that will never come; the failure
            // flag must wake and abort them rather than hang the test.
            let _: u64 = rank.recv(0, 9);
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_is_diagnosed() {
        Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 0, 1u64);
            } else {
                let _: Vec<f64> = rank.recv(0, 0);
            }
        });
    }

    #[test]
    fn gflops_reporting() {
        let r = Machine::new(2, CostModel::bluegene_p()).run(|rank| {
            rank.compute(3.4e9);
            rank.rank()
        });
        // 2 ranks x 3.4 Gflop in 1 simulated second = 6.8 Gflop/s.
        assert!((r.gflops() - 6.8).abs() < 1e-6);
    }

    #[test]
    fn isend_hides_transfer_under_compute() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                // 8 bytes: α = 1 occupies the sender, β·8 = 4 is pipelined.
                let req = rank.isend(1, 1, 42u64);
                assert_eq!(rank.clock(), 1.0);
                assert_eq!(req.complete_at, 5.0);
                rank.compute(6.0); // clock 7: transfer fully hidden
                rank.wait_send(req); // already past complete_at: no-op
                assert_eq!(rank.clock(), 7.0);
            } else {
                let x: u64 = rank.recv(0, 1);
                assert_eq!(x, 42);
                // Arrival = sender clock after α (1) + transfer (4).
                assert_eq!(rank.clock(), 5.0);
            }
            rank.rank()
        });
        assert_eq!(r.stats[0].comm_hidden_s, 4.0);
        assert_eq!(r.stats[0].comm_s, 1.0);
        // Blocking send of the same message would have finished at 11.
        assert_eq!(r.stats[0].clock_s, 7.0);
    }

    #[test]
    fn wait_send_exposes_unfinished_transfer() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                let req = rank.isend(1, 1, 7u64); // clock 1, complete at 5
                rank.compute(1.0); // clock 2
                rank.wait_send(req); // exposes 3 s of the 4 s transfer
                assert_eq!(rank.clock(), 5.0);
            } else {
                let _: u64 = rank.recv(0, 1);
            }
            0
        });
        assert_eq!(r.stats[0].comm_hidden_s, 1.0);
        assert_eq!(r.stats[0].comm_s, 1.0 + 3.0);
    }

    #[test]
    fn try_recv_decides_by_virtual_time_only() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 4, 9u64); // arrival at virtual t = 1
                0
            } else {
                // Even though the message is (or will be) physically posted,
                // at virtual t = 0.5 it has not arrived yet.
                rank.advance(0.5);
                assert!(rank.try_recv::<u64>(0, 4).is_none());
                assert_eq!(rank.clock(), 0.5); // try_recv never advances time
                rank.advance(1.0);
                let got = rank.try_recv::<u64>(0, 4);
                assert_eq!(got, Some(9));
                assert_eq!(rank.clock(), 1.5);
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    fn wait_any_picks_earliest_virtual_arrival() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 1.0,
        };
        let r = Machine::new(3, m).run(|rank| {
            match rank.rank() {
                0 => {
                    // Arrives at t = 1.
                    rank.send(2, 5, 100u64);
                    0
                }
                1 => {
                    // Same tag, later virtual arrival (t = 4) — but often
                    // physically posted first.
                    rank.compute(3.0);
                    rank.send(2, 5, 200u64);
                    0
                }
                _ => {
                    let keys = [(1usize, 5u64), (0usize, 5u64)];
                    let (i1, v1): (usize, u64) = rank.wait_any(&keys);
                    assert_eq!((i1, v1), (1, 100)); // rank 0's message first
                                                    // Only one pending key remains: drop the consumed one.
                    let (i2, v2): (usize, u64) = rank.wait_any(&keys[..1]);
                    assert_eq!((i2, v2), (0, 200));
                    assert_eq!(rank.clock(), 4.0);
                    1
                }
            }
        });
        assert_eq!(r.results, vec![0, 0, 1]);
    }

    #[test]
    fn probe_reports_arrival_without_consuming() {
        let m = CostModel {
            alpha_s: 2.0,
            beta_s_per_byte: 0.0,
            flop_time_s: 0.0,
        };
        let r = Machine::new(2, m).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, 6, 5u64);
                0
            } else {
                let t = rank.probe(0, 6);
                assert_eq!(t, 2.0);
                assert_eq!(rank.clock(), 0.0); // probe does not advance time
                let x: u64 = rank.recv(0, 6);
                assert_eq!(x, 5);
                assert_eq!(rank.clock(), 2.0);
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_with_diagnostic() {
        // Both ranks receive from each other without anyone sending: a
        // protocol bug that used to hang forever in 50 ms condvar waits.
        Machine::new(2, CostModel::zero_cost()).run(|rank| {
            let peer = 1 - rank.rank();
            let _: u64 = rank.recv(peer, 42);
        });
    }

    #[test]
    fn deadlock_diagnostic_lists_pending_keys() {
        let caught = std::panic::catch_unwind(|| {
            Machine::new(3, CostModel::zero_cost()).run(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 7, 1u64);
                }
                // Rank 1 consumes its message then joins the others in
                // waiting for one that never comes.
                if rank.rank() == 1 {
                    let _: u64 = rank.recv(0, 7);
                }
                let _: u64 = rank.recv((rank.rank() + 1) % 3, 99);
            });
        });
        let payload = caught.expect_err("deadlock must abort the run");
        let msg = payload
            .downcast_ref::<String>()
            .expect("diagnostic is a string");
        assert!(msg.contains("deadlock"), "{msg}");
        for r in 0..3 {
            assert!(msg.contains(&format!("rank {r} waiting on")), "{msg}");
        }
        assert!(msg.contains("tag=99"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected_when_sender_already_finished() {
        // Rank 0 exits without sending; rank 1 waits on it forever. Not all
        // ranks are *blocked*, but the blockage still can never resolve.
        Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 1 {
                let _: u64 = rank.recv(0, 11);
            }
        });
    }

    #[test]
    fn run_result_propagates_error_and_unblocks_peers() {
        let r: Result<RunReport<u64>, &str> =
            Machine::new(3, CostModel::zero_cost()).run_result(|rank| {
                if rank.rank() == 1 {
                    return Err("bad pivot");
                }
                // Peers block on rank 1 forever; the error must unwind them.
                let _: u64 = rank.recv(1, 3);
                Ok(0)
            });
        assert_eq!(r.unwrap_err(), "bad pivot");
    }

    #[test]
    fn run_result_returns_lowest_rank_error() {
        let r: Result<RunReport<u64>, usize> =
            Machine::new(4, CostModel::zero_cost()).run_result(|rank| {
                if rank.rank() >= 2 {
                    return Err(rank.rank());
                }
                let _: u64 = rank.recv(3, 1);
                Ok(0)
            });
        assert_eq!(r.unwrap_err(), 2);
    }

    #[test]
    fn run_result_ok_matches_run() {
        let r = Machine::new(2, CostModel::bluegene_p())
            .run_result::<_, (), _>(|rank| {
                rank.compute(3.4e9);
                Ok(rank.rank())
            })
            .unwrap();
        assert_eq!(r.results, vec![0, 1]);
        assert!((r.gflops() - 6.8).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "boom in result mode")]
    fn run_result_still_propagates_real_panics() {
        let _ = Machine::new(2, CostModel::zero_cost()).run_result::<u64, (), _>(|rank| {
            if rank.rank() == 0 {
                panic!("boom in result mode");
            }
            let _: u64 = rank.recv(0, 9);
            Ok(0)
        });
    }

    #[test]
    fn events_off_by_default_and_never_perturb_clocks() {
        let program = |rank: &mut Rank| {
            if rank.rank() == 0 {
                rank.compute_as(1e6, Phase::Panel, Some(3));
                rank.send(1, 1, vec![1.0f64; 64]);
            } else {
                let _: Vec<f64> = rank.recv(0, 1);
            }
            rank.clock()
        };
        let plain = Machine::new(2, CostModel::bluegene_p()).run(program);
        assert!(plain.events.iter().all(Vec::is_empty));
        let traced = Machine::new(2, CostModel::bluegene_p())
            .trace_events(true)
            .run(program);
        // Bitwise identical virtual time with and without tracing.
        assert_eq!(plain.results, traced.results);
        assert!(!traced.events[0].is_empty());
    }

    #[test]
    fn traced_run_records_compute_comm_and_wait_spans() {
        let m = CostModel {
            alpha_s: 1.0,
            beta_s_per_byte: 0.5,
            flop_time_s: 1.0,
        };
        let r = Machine::new(2, m).trace_events(true).run(|rank| {
            if rank.rank() == 0 {
                rank.compute_as(2.0, Phase::Panel, Some(5)); // [0, 2]
                rank.send(1, 1, 42u64); // comm [2, 7]: α + 8·β
                let req = rank.isend(1, 2, 7u64); // comm [7, 8]: α only
                rank.wait_send(req); // wait [8, 12]: exposed transfer
            } else {
                let t = rank.probe(0, 1); // marker at arrival 7
                assert_eq!(t, 7.0);
                let _: u64 = rank.recv(0, 1); // wait [0, 7]
                let _: (usize, u64) = rank.wait_any(&[(0, 2)]); // wait [7, 12]
            }
            0
        });
        let ev0 = &r.events[0];
        let kinds: Vec<(Phase, f64, f64)> =
            ev0.iter().map(|e| (e.phase, e.start_s, e.dur_s)).collect();
        assert_eq!(
            kinds,
            vec![
                (Phase::Panel, 0.0, 2.0),
                (Phase::Comm, 2.0, 5.0),
                (Phase::Comm, 7.0, 1.0),
                (Phase::Wait, 8.0, 4.0),
            ]
        );
        assert_eq!(ev0[0].supernode, Some(5));
        assert!(ev0.iter().all(|e| e.who == 0));
        let ev1 = &r.events[1];
        // Probe marker (zero duration) plus the two real waits.
        assert!(ev1.contains(&SpanEvent {
            phase: Phase::Wait,
            supernode: None,
            who: 1,
            start_s: 7.0,
            dur_s: 0.0,
        }));
        let waits: Vec<(f64, f64)> = ev1
            .iter()
            .filter(|e| e.phase == Phase::Wait && e.dur_s > 0.0)
            .map(|e| (e.start_s, e.dur_s))
            .collect();
        assert_eq!(waits, vec![(0.0, 7.0), (7.0, 5.0)]);
    }

    #[test]
    fn set_trace_events_excludes_epilogue() {
        let r = Machine::new(2, CostModel::bluegene_p())
            .trace_events(true)
            .run(|rank| {
                if rank.rank() == 0 {
                    rank.send(1, 1, 1u64);
                    rank.set_trace_events(false);
                    rank.send(1, 2, 2u64); // epilogue: not recorded
                } else {
                    let _: u64 = rank.recv(0, 1);
                    let _: u64 = rank.recv(0, 2);
                }
                0
            });
        let comm0 = r.events[0]
            .iter()
            .filter(|e| e.phase == Phase::Comm)
            .count();
        assert_eq!(comm0, 1);
    }

    #[test]
    fn queue_peak_is_tracked() {
        let r = Machine::new(2, CostModel::zero_cost()).run(|rank| {
            if rank.rank() == 0 {
                for i in 0..5u64 {
                    rank.send(1, 3, i);
                }
                // Handshake so rank 1 drains only after all 5 are queued.
                rank.send(1, 4, 1u64);
                0
            } else {
                let _: u64 = rank.recv(0, 4);
                for _ in 0..5 {
                    let _: u64 = rank.recv(0, 3);
                }
                1
            }
        });
        assert!(r.stats[1].queue_peak >= 5, "peak {}", r.stats[1].queue_peak);
    }
}
